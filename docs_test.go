package essdsim_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInternalPackageDocs is the docs-lint gate: every internal/* package
// (and the root package) must carry package-level documentation of a
// non-trivial length. CI runs this test by name, so a new package without
// a doc comment fails the build, not just the review.
func TestInternalPackageDocs(t *testing.T) {
	dirs := []string{"."}
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("internal", e.Name()))
		}
	}
	for _, dir := range dirs {
		doc := packageDoc(t, dir)
		if len(doc) < 100 {
			t.Errorf("package %s has no substantial package documentation (%d chars); add a doc comment or doc.go", dir, len(doc))
		}
	}
}

// packageDoc returns the longest package comment across the directory's
// non-test files (test-only packages may keep theirs on the _test file).
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	best := ""
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			if strings.HasSuffix(name, "_test.go") && best != "" {
				continue
			}
			if file.Doc != nil && len(file.Doc.Text()) > len(best) {
				best = file.Doc.Text()
			}
		}
	}
	return best
}
