package expgrid

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/stats"
	"essdsim/internal/workload"
)

func essd1Factory(seed uint64) blockdev.Device {
	d, err := profiles.ByName("essd1", sim.NewEngine(), sim.NewRNG(seed, seed^0xaa))
	if err != nil {
		panic(err)
	}
	return d
}

func ssdFactory(seed uint64) blockdev.Device {
	d, err := profiles.ByName("ssd", sim.NewEngine(), sim.NewRNG(seed, seed^0xbb))
	if err != nil {
		panic(err)
	}
	return d
}

// quickSweep is a 2-device × 2-pattern × 2-size × 2-QD grid (16 cells)
// small enough for -short runs.
func quickSweep() Sweep {
	return Sweep{
		Devices: []NamedFactory{
			{Name: "essd1", New: essd1Factory},
			{Name: "ssd", New: ssdFactory},
		},
		Patterns:     []workload.Pattern{workload.RandWrite, workload.RandRead},
		BlockSizes:   []int64{4 << 10, 64 << 10},
		QueueDepths:  []int{1, 8},
		CellDuration: 60 * sim.Millisecond,
		Warmup:       10 * sim.Millisecond,
		Seed:         7,
		Label:        "test",
	}
}

func TestEnumerationOrder(t *testing.T) {
	cells := quickSweep().Cells()
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	// Row-major: device outermost, QD innermost; indices sequential.
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
		if c.WriteRatioPct != -1 {
			t.Fatalf("cell %d has ratio %d without a ratio axis", i, c.WriteRatioPct)
		}
	}
	if cells[0].DeviceName != "essd1" || cells[8].DeviceName != "ssd" {
		t.Fatalf("device axis not outermost: %q then %q", cells[0].DeviceName, cells[8].DeviceName)
	}
	if cells[0].QueueDepth != 1 || cells[1].QueueDepth != 8 {
		t.Fatalf("queue depth not innermost: %d then %d", cells[0].QueueDepth, cells[1].QueueDepth)
	}
	if cells[0].Pattern != workload.RandWrite || cells[4].Pattern != workload.RandRead {
		t.Fatal("pattern order wrong")
	}
}

func TestSeedStableUnderSubsetting(t *testing.T) {
	full := quickSweep()
	seeds := map[[4]int64]uint64{}
	for _, c := range full.Cells() {
		key := [4]int64{int64(c.DeviceIndex), int64(c.Pattern), c.BlockSize, int64(c.QueueDepth)}
		seeds[key] = c.Seed
	}
	// Subset and reorder every axis: surviving cells must keep their seeds.
	sub := full
	sub.Devices = []NamedFactory{{Name: "ssd", New: ssdFactory}, {Name: "essd1", New: essd1Factory}}
	sub.Patterns = []workload.Pattern{workload.RandRead}
	sub.BlockSizes = []int64{64 << 10}
	sub.QueueDepths = []int{8, 1}
	for _, c := range sub.Cells() {
		dev := int64(0) // essd1's index in the full sweep
		if c.DeviceName == "ssd" {
			dev = 1
		}
		key := [4]int64{dev, int64(c.Pattern), c.BlockSize, int64(c.QueueDepth)}
		want, ok := seeds[key]
		if !ok {
			t.Fatalf("cell %+v not present in full sweep", c)
		}
		if c.Seed != want {
			t.Errorf("cell %s/%s/bs=%d/qd=%d seed changed under subsetting: %x != %x",
				c.DeviceName, c.Pattern, c.BlockSize, c.QueueDepth, c.Seed, want)
		}
	}
	// Distinct coordinates must get distinct seeds.
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatal("seed collision across coordinates")
		}
		seen[s] = true
	}
	// Label and root seed must both decorrelate.
	relabeled := full
	relabeled.Label = "other"
	if relabeled.Cells()[0].Seed == full.Cells()[0].Seed {
		t.Error("label does not decorrelate seeds")
	}
	reseeded := full
	reseeded.Seed++
	if reseeded.Cells()[0].Seed == full.Cells()[0].Seed {
		t.Error("root seed does not decorrelate seeds")
	}
}

// projection is the comparable content of a CellResult.
type projection struct {
	Cell    Cell
	Device  string
	Summary stats.Summary
	Ops     uint64
	Bytes   int64
}

func project(results []CellResult) []projection {
	out := make([]projection, len(results))
	for i, r := range results {
		out[i] = projection{
			Cell: r.Cell, Device: r.Device,
			Summary: r.Res.Lat.Summarize(), Ops: r.Res.Ops, Bytes: r.Res.Bytes,
		}
	}
	return out
}

// TestParallelDeterminism is the contract of the whole subsystem: the same
// sweep run with 1 worker and with 8 workers yields identical results —
// same cells, same latencies, same order.
func TestParallelDeterminism(t *testing.T) {
	sw := quickSweep()
	serial, err := Runner{Workers: 1}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Runner{Workers: 8}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != 16 || len(parallel) != 16 {
		t.Fatalf("result counts: %d serial, %d parallel", len(serial), len(parallel))
	}
	ps, pp := project(serial), project(parallel)
	for i := range ps {
		if !reflect.DeepEqual(ps[i], pp[i]) {
			t.Fatalf("cell %d differs between 1 and 8 workers:\nserial:   %+v\nparallel: %+v",
				i, ps[i], pp[i])
		}
	}
}

func TestStreamOrderAndProgress(t *testing.T) {
	sw := quickSweep()
	var progress []int
	r := Runner{Workers: 4, OnProgress: func(p Progress) {
		if p.Total != 16 {
			t.Errorf("progress total = %d", p.Total)
		}
		progress = append(progress, p.Done)
	}}
	stream, errf := r.Stream(context.Background(), sw)
	next := 0
	for res := range stream {
		if res.Index != next {
			t.Fatalf("stream out of order: got cell %d, want %d", res.Index, next)
		}
		next++
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	if next != 16 {
		t.Fatalf("streamed %d cells", next)
	}
	if len(progress) != 16 || progress[15] != 16 {
		t.Fatalf("progress calls = %v", progress)
	}
	for i := 1; i < len(progress); i++ {
		if progress[i] != progress[i-1]+1 {
			t.Fatalf("progress not monotone: %v", progress)
		}
	}
}

func TestCancellation(t *testing.T) {
	sw := quickSweep()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	r := Runner{Workers: 2, OnProgress: func(p Progress) {
		if p.Done == 2 {
			cancel()
		}
		n++
	}}
	results, err := r.Run(ctx, sw)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) >= 16 {
		t.Fatalf("cancellation did not stop the sweep: %d results", len(results))
	}
	if n >= 16 {
		t.Fatalf("cancellation did not stop the workers: %d cells ran", n)
	}
}

func TestCellErrorStopsSweep(t *testing.T) {
	sw := quickSweep()
	sw.BlockSizes = []int64{100} // not a multiple of the device block size
	results, err := Runner{Workers: 2}.Run(context.Background(), sw)
	if err == nil {
		t.Fatal("invalid spec did not error")
	}
	if !strings.Contains(err.Error(), "expgrid: cell") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if len(results) != 0 {
		t.Fatalf("failed sweep emitted %d results", len(results))
	}
}

func TestValidate(t *testing.T) {
	var sw Sweep
	if err := sw.Validate(); err == nil {
		t.Fatal("empty sweep validated")
	}
	if _, err := (Runner{}).Run(context.Background(), sw); err == nil {
		t.Fatal("running an empty sweep did not error")
	}
	sw = quickSweep()
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	sw.Devices[0].New = nil
	if err := sw.Validate(); err == nil {
		t.Fatal("nil factory validated")
	}
}

func TestWriteRatioAxisAndPrecond(t *testing.T) {
	sw := Sweep{
		Devices:        Devices("essd1", essd1Factory),
		Patterns:       []workload.Pattern{workload.Mixed},
		BlockSizes:     []int64{128 << 10},
		QueueDepths:    []int{8},
		WriteRatiosPct: []int{0, 100},
		CellDuration:   60 * sim.Millisecond,
		Warmup:         10 * sim.Millisecond,
		Precondition:   PrecondFull,
		Seed:           3,
	}
	results, err := Runner{}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].WriteRatioPct != 0 || results[1].WriteRatioPct != 100 {
		t.Fatalf("ratio axis order wrong: %d, %d",
			results[0].WriteRatioPct, results[1].WriteRatioPct)
	}
	if results[0].Res.WriteLat.Count() != 0 {
		t.Error("0% write-ratio cell recorded writes")
	}
	if results[1].Res.ReadLat.Count() != 0 {
		t.Error("100% write-ratio cell recorded reads")
	}
}

// TestRatioAxisOnlyMultipliesMixed asserts that adding a write-ratio axis
// neither duplicates nor re-seeds pure-pattern cells.
func TestRatioAxisOnlyMultipliesMixed(t *testing.T) {
	base := Sweep{
		Devices:     Devices("essd1", essd1Factory),
		Patterns:    []workload.Pattern{workload.RandRead, workload.Mixed},
		BlockSizes:  []int64{4 << 10},
		QueueDepths: []int{1},
		Seed:        5,
	}
	withAxis := base
	withAxis.WriteRatiosPct = []int{30, 70}
	cells := withAxis.Cells()
	if len(cells) != 3 {
		t.Fatalf("cells = %d, want 1 randread + 2 mixed", len(cells))
	}
	if cells[0].Pattern != workload.RandRead || cells[0].WriteRatioPct != -1 {
		t.Fatalf("pure cell got a ratio coordinate: %+v", cells[0])
	}
	if cells[1].WriteRatioPct != 30 || cells[2].WriteRatioPct != 70 {
		t.Fatalf("mixed ratios wrong: %+v %+v", cells[1], cells[2])
	}
	if noAxis := base.Cells(); noAxis[0].Seed != cells[0].Seed {
		t.Fatal("ratio axis re-seeded the pure-pattern cell")
	}
}

func TestNegativeWarmupMeansNone(t *testing.T) {
	sw := Sweep{Warmup: -1}.withDefaults()
	if sw.Warmup != 0 {
		t.Fatalf("negative warmup became %v, want 0", sw.Warmup)
	}
	if def := (Sweep{}).withDefaults(); def.Warmup != 50*sim.Millisecond {
		t.Fatalf("default warmup = %v", def.Warmup)
	}
}

func TestInspectHook(t *testing.T) {
	sw := Sweep{
		Devices:      Devices("essd1", essd1Factory),
		Patterns:     []workload.Pattern{workload.RandWrite},
		BlockSizes:   []int64{4 << 10},
		QueueDepths:  []int{1},
		CellDuration: 30 * sim.Millisecond,
		Warmup:       5 * sim.Millisecond,
		Seed:         11,
	}
	sw.Inspect = func(dev blockdev.Device, c Cell) any { return dev.Capacity() }
	results, err := Runner{}.Run(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if cap, ok := results[0].Info.(int64); !ok || cap <= 0 {
		t.Fatalf("Inspect capture = %v", results[0].Info)
	}
}
