package scenario

import (
	"context"
	"reflect"
	"testing"

	"essdsim/internal/essd"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// quickNeighbor is a 3-cell sweep (0/2/4 aggressors at one rate) sized
// for -short runs.
func quickNeighbor() NeighborSweep {
	return NeighborSweep{
		AggressorCounts:      []int{0, 2, 4},
		AggressorRatesPerSec: []float64{1600},
		VictimOps:            900,
		Seed:                 7,
		Label:                "neighbor-test",
	}
}

// TestNeighborWorkerDeterminism checks the satellite promise: the
// noisy-neighbor sweep is byte-identical at 1 worker and 8 workers.
func TestNeighborWorkerDeterminism(t *testing.T) {
	s1 := quickNeighbor()
	s1.Workers = 1
	r1, err := RunNeighbor(context.Background(), s1)
	if err != nil {
		t.Fatal(err)
	}
	s8 := quickNeighbor()
	s8.Workers = 8
	r8, err := RunNeighbor(context.Background(), s8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("neighbor sweep differs between 1 and 8 workers")
	}
}

// TestNeighborInterference is the acceptance check of the shared-backend
// refactor: the same victim and aggressor workloads run twice on one
// engine — once with every volume attached to ONE shared backend, once
// with each volume on its own private backend — and only the shared run
// may interfere. Aggressor load must measurably inflate the victim's p99
// and engage the victim's flow limiter via shared debt; the private
// control must do neither, and a lighter shared load must throttle later
// than a heavier one.
func TestNeighborInterference(t *testing.T) {
	run := func(shared bool, aggressors int) (p99 sim.Duration, throttled bool, onset sim.Time) {
		eng := sim.NewEngine()
		rng := sim.NewRNG(11, 13)
		cell := expgrid.Cell{Aggressors: aggressors, RatePerSec: 1600, WriteRatioPct: 100, Seed: 21}
		s := quickNeighbor()
		var tenants []workload.Tenant
		if shared {
			be := essd.NewBackend(eng, profiles.NeighborBackendConfig(), rng.Derive("backend"))
			tenants = s.AttachTenants(be, rng, cell)
		} else {
			// Identical tenants, but every volume gets a private backend:
			// same workloads and seeds, no shared resources. AttachTenants
			// attaches everything it is given to one backend, so build the
			// mix volume by volume instead.
			sharedBE := essd.NewBackend(eng, profiles.NeighborBackendConfig(), rng.Derive("backend"))
			mixed := s.AttachTenants(sharedBE, rng, cell)
			for i, tn := range mixed {
				priv := essd.NewBackend(eng, profiles.NeighborBackendConfig(),
					sim.NewRNG(uint64(41+i), uint64(43+i)))
				vol := priv.Attach(profiles.NeighborVolumeConfig(tn.Name), sim.NewRNG(uint64(51+i), 1))
				vol.Precondition(1)
				tn.Dev = vol
				tenants = append(tenants, tn)
			}
		}
		res := workload.RunTenants(eng, tenants)
		victim := tenants[0].Dev.(*essd.ESSD)
		return res[0].Open.Lat.Summarize().P99, victim.Throttled(), victim.ThrottledAt()
	}

	sharedP99, sharedThrottled, sharedOnset := run(true, 4)
	privP99, privThrottled, _ := run(false, 4)

	if !sharedThrottled {
		t.Fatal("shared backend: aggressor debt did not engage the victim flow limiter")
	}
	if privThrottled {
		t.Fatal("private backends: victim throttled without shared debt")
	}
	if float64(sharedP99) < 2*float64(privP99) {
		t.Fatalf("victim p99 not inflated by neighbors: shared %v vs private %v", sharedP99, privP99)
	}

	// Fewer aggressors → later throttle onset (the pooled debt grows more
	// slowly past the victim's fixed threshold).
	lightP99, lightThrottled, lightOnset := run(true, 2)
	if !lightThrottled {
		t.Fatal("2 aggressors should still cross the shared-debt threshold in this configuration")
	}
	if lightOnset <= sharedOnset {
		t.Fatalf("throttle onset did not advance with aggressor count: 2 aggr at %v, 4 aggr at %v",
			lightOnset, sharedOnset)
	}
	_ = lightP99
}

// TestNeighborControlCellsBehave sanity-checks the folded report: control
// cells carry no inflation, loaded cells do, and throttle onset is
// monotone in aggressor count at a fixed rate.
func TestNeighborControlCellsBehave(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cell sweep")
	}
	rep, err := RunNeighbor(context.Background(), quickNeighbor())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(rep.Cells))
	}
	var lastOnset sim.Duration
	for i, c := range rep.Cells {
		if c.Aggressors == 0 {
			if c.P99Inflation != 0 || c.Throttled {
				t.Fatalf("control cell polluted: %+v", c)
			}
			continue
		}
		if c.P999Inflation <= 1 {
			t.Fatalf("cell %d (%d aggressors): p99.9 inflation %v not > 1", i, c.Aggressors, c.P999Inflation)
		}
		if !c.Throttled || c.ThrottleOnset < 0 {
			t.Fatalf("cell %d (%d aggressors): not throttled", i, c.Aggressors)
		}
		if lastOnset > 0 && c.ThrottleOnset >= lastOnset {
			t.Fatalf("throttle onset not advancing: %v then %v", lastOnset, c.ThrottleOnset)
		}
		lastOnset = c.ThrottleOnset
		if c.AggrDebt <= c.VictimDebt {
			t.Fatalf("cell %d: aggressor debt %d not dominating victim debt %d", i, c.AggrDebt, c.VictimDebt)
		}
	}
}

// TestNeighborCacheWarm checks that a cache-warm re-run simulates zero new
// cells and reproduces the identical report (modulo the cache bookkeeping
// fields themselves).
func TestNeighborCacheWarm(t *testing.T) {
	cache := expgrid.NewCache(0)
	s := quickNeighbor()
	s.Cache = cache
	cold, err := RunNeighbor(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedCells != 0 {
		t.Fatalf("cold run reported %d cached cells", cold.CachedCells)
	}
	warm, err := RunNeighbor(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CachedCells != len(warm.Cells) {
		t.Fatalf("warm run cached %d of %d cells", warm.CachedCells, len(warm.Cells))
	}
	// Strip the bookkeeping difference and compare the measurements.
	warm.CachedCells = cold.CachedCells
	for i := range warm.Cells {
		warm.Cells[i].Cached = cold.Cells[i].Cached
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cache-warm neighbor report differs from cold run")
	}
}
