// gcstudy reproduces Observation #2 at reduced scale: sustained random
// writes collapse the local SSD's throughput once GC engages near one full
// device write, while the ESSD sustains its budget far longer (ESSD-1) or
// indefinitely (ESSD-2) because the cloud backend cleans in the background.
//
// All three devices' fill experiments run concurrently as one experiment
// grid (-workers cells in parallel), one fresh device per cell.
package main

import (
	"flag"
	"fmt"

	"essdsim"
)

func report(res *essdsim.SustainedResult) {
	fmt.Printf("\n%s — wrote %.1f GiB (%.1fx capacity) in %v\n",
		res.Device, float64(res.TotalWritten)/(1<<30),
		float64(res.TotalWritten)/float64(res.Capacity), res.Elapsed)
	// Print the per-second throughput timeline, decimated.
	fmt.Print("  GB/s: ")
	step := len(res.Rates)/16 + 1
	for i := 0; i < len(res.Rates); i += step {
		fmt.Printf("%.1f ", res.Rates[i]/1e9)
	}
	fmt.Println()
	if res.KneeCapFrac < 0 {
		fmt.Println("  no throughput cliff: GC impact disappears (Observation #2)")
		return
	}
	fmt.Printf("  throughput cliff after writing %.2fx capacity\n", res.KneeCapFrac)
	if res.Throttled {
		fmt.Println("  cause: provider flow limiter engaged (cleaning debt exceeded spare capacity)")
	}
}

func main() {
	workers := flag.Int("workers", 0, "parallel device fills (0 = GOMAXPROCS)")
	flag.Parse()

	fmt.Println("Observation #2: the performance impact of GC appears much later or disappears.")
	fmt.Println("Writing 2x each device's capacity with random 128K writes at QD32...")
	devices := essdsim.ProfileDevices(
		"ssd",   // knee near 1x capacity
		"essd1", // no knee yet at 2x (paper: 2.55x)
		"essd2", // never
	)
	results := essdsim.RunSustainedWrites(devices, 2,
		essdsim.ExperimentOptions{Seed: 7, Workers: *workers})
	for _, res := range results {
		report(res)
	}
	fmt.Println("\nImplication #2: GC-mitigation machinery built for local SSDs (tail-tolerant")
	fmt.Println("redundancy, GC-aware scheduling) buys little on ESSDs — and its costs remain.")
}
