package ftl

import (
	"testing"
	"testing/quick"

	"essdsim/internal/flash"
	"essdsim/internal/sim"
)

// smallSetup builds a tiny FTL (64 MiB user space) for fast tests.
func smallSetup(t *testing.T, userMB int64, op float64) (*sim.Engine, *FTL) {
	t.Helper()
	eng := sim.NewEngine()
	fc := flash.Config{
		Channels:       2,
		DiesPerChannel: 2,
		PlanesPerDie:   2,
		PagesPerBlock:  16,
		BlocksPerPlane: 4096,
		PageSize:       16 << 10,
		ReadLatency:    40 * sim.Microsecond,
		ProgramLatency: 190 * sim.Microsecond,
		EraseLatency:   2 * sim.Millisecond,
		ChannelBW:      1.2e9,
	}
	arr := flash.NewArray(eng, fc, sim.NewRNG(3, 3))
	cfg := Config{
		LogicalPageSize:  4096,
		UserCapacity:     userMB << 20,
		Overprovision:    op,
		WriteBufferBytes: 1 << 20,
		GCLowWaterFrac:   0.06,
		GCHighWaterFrac:  0.08,
		ReserveSBs:       2,
		GCStreams:        4,
	}
	return eng, New(eng, arr, cfg)
}

func TestGeometryDerivation(t *testing.T) {
	_, f := smallSetup(t, 64, 0.05)
	if f.slotsPerPage != 4 {
		t.Fatalf("slotsPerPage = %d", f.slotsPerPage)
	}
	if f.slotsPerUnit != 8 {
		t.Fatalf("slotsPerUnit = %d", f.slotsPerUnit)
	}
	// 8 slots/unit × 4 dies × 16 pages/block = 512 slots per superblock.
	if f.slotsPerSB != 512 {
		t.Fatalf("slotsPerSB = %d", f.slotsPerSB)
	}
	if f.userLPNs != 16384 {
		t.Fatalf("userLPNs = %d", f.userLPNs)
	}
	// At least user + OP superblocks.
	if f.numSBs < 33 {
		t.Fatalf("numSBs = %d", f.numSBs)
	}
}

func TestWriteAckFromBuffer(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	var acked sim.Time = -1
	f.HostWrite(0, 1, func() { acked = eng.Now() })
	if acked != 0 {
		t.Fatalf("buffered write not acked synchronously: %v", acked)
	}
	if f.BufferBytes() != 4096 {
		t.Fatalf("buffer bytes = %d", f.BufferBytes())
	}
	if !f.InBuffer(0) {
		t.Fatal("LPN not marked buffered")
	}
	eng.Run()
}

func TestBufferCoalescing(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	n := 0
	f.HostWrite(5, 1, func() { n++ })
	f.HostWrite(5, 1, func() { n++ }) // coalesces: same LPN still pending
	if n != 2 {
		t.Fatalf("acks = %d", n)
	}
	if f.BufferBytes() != 4096 {
		t.Fatalf("coalesced write double-charged: %d", f.BufferBytes())
	}
	if f.Counters().BufferCoalesced != 1 {
		t.Fatalf("coalesce counter = %d", f.Counters().BufferCoalesced)
	}
	eng.Run()
}

func TestDrainProgramsFullUnits(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	// 8 LPNs = exactly one program unit.
	f.HostWrite(0, 8, nil)
	eng.Run()
	if got := f.Counters().HostSlots; got != 8 {
		t.Fatalf("host slots = %d", got)
	}
	if f.BufferBytes() != 0 {
		t.Fatalf("buffer not drained: %d", f.BufferBytes())
	}
	for i := int64(0); i < 8; i++ {
		if !f.Mapped(i) {
			t.Fatalf("LPN %d unmapped after drain", i)
		}
		if f.InBuffer(i) {
			t.Fatalf("LPN %d still buffered", i)
		}
	}
}

func TestPartialUnitWaitsWithoutFlush(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	f.HostWrite(0, 3, nil) // less than one unit
	eng.Run()
	if f.Counters().HostSlots != 0 {
		t.Fatal("partial unit drained without flush")
	}
	if f.BufferBytes() != 3*4096 {
		t.Fatalf("buffer bytes = %d", f.BufferBytes())
	}
}

func TestFlushDrainsPartialUnit(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	f.HostWrite(0, 3, nil)
	flushed := false
	f.Flush(func() { flushed = true })
	eng.Run()
	if !flushed {
		t.Fatal("flush never completed")
	}
	if f.Counters().HostSlots != 3 {
		t.Fatalf("host slots = %d", f.Counters().HostSlots)
	}
	if f.BufferBytes() != 0 {
		t.Fatal("buffer not empty after flush")
	}
}

func TestFlushOnEmptyBufferImmediate(t *testing.T) {
	_, f := smallSetup(t, 64, 0.05)
	called := false
	f.Flush(func() { called = true })
	if !called {
		t.Fatal("empty flush must complete synchronously")
	}
}

func TestBufferBackpressure(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	// Buffer is 1 MiB = 256 LPNs. Write 512 LPNs in one request: must
	// stall until drain frees space, then ack.
	var ackAt sim.Time = -1
	f.HostWrite(0, 512, func() { ackAt = eng.Now() })
	if ackAt == 0 {
		t.Fatal("oversized write acked without stalling")
	}
	eng.Run()
	if ackAt <= 0 {
		t.Fatal("oversized write never acked")
	}
	if f.Counters().BufferStallNanos <= 0 {
		t.Fatal("stall time not accounted")
	}
}

func TestOverwriteInvalidates(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	f.HostWrite(0, 8, nil)
	eng.Run()
	before := f.Counters().InvalidatedBytes
	f.HostWrite(0, 8, nil)
	eng.Run()
	gained := f.Counters().InvalidatedBytes - before
	if gained != 8*4096 {
		t.Fatalf("invalidated %d bytes, want %d", gained, 8*4096)
	}
	if got := f.Counters().HostSlots; got != 16 {
		t.Fatalf("host slots = %d", got)
	}
}

func TestReadGroupsFlashPages(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	f.HostWrite(0, 8, nil)
	eng.Run()
	// 8 sequential LPNs = 2 flash pages (4 slots each).
	n := f.ReadLPNs(0, 8, func() {})
	if n != 2 {
		t.Fatalf("page reads = %d, want 2", n)
	}
	eng.Run()
}

func TestReadUnmappedAndBufferedFree(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	f.HostWrite(0, 2, nil) // stays in buffer (partial unit)
	done := false
	n := f.ReadLPNs(0, 4, func() { done = true }) // 2 buffered + 2 unmapped
	if n != 0 {
		t.Fatalf("media reads = %d, want 0", n)
	}
	eng.Run()
	if !done {
		t.Fatal("read completion lost")
	}
}

func TestTrimInvalidates(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.05)
	f.HostWrite(0, 8, nil)
	eng.Run()
	f.Trim(0, 8)
	for i := int64(0); i < 8; i++ {
		if f.Mapped(i) {
			t.Fatalf("LPN %d mapped after trim", i)
		}
	}
	if n := f.ReadLPNs(0, 8, func() {}); n != 0 {
		t.Fatalf("trimmed read cost %d media reads", n)
	}
	eng.Run()
}

func TestPreconditionSequential(t *testing.T) {
	_, f := smallSetup(t, 64, 0.05)
	f.Precondition(1.0, false, sim.NewRNG(1, 1))
	if got := f.Utilization(); got < 0.999 {
		t.Fatalf("utilization = %v", got)
	}
	for i := int64(0); i < f.userLPNs; i++ {
		if !f.Mapped(i) {
			t.Fatalf("LPN %d unmapped after full precondition", i)
		}
	}
	// Sequential layout: LPNs 0..7 share a unit => 2 flash pages.
	if n := f.ReadLPNs(0, 8, func() {}); n != 2 {
		t.Fatalf("sequential precondition layout: %d page reads", n)
	}
}

func TestPreconditionRandomScatters(t *testing.T) {
	_, f := smallSetup(t, 64, 0.05)
	f.Precondition(1.0, true, sim.NewRNG(1, 1))
	// Randomized layout: 8 sequential LPNs land on ~8 distinct pages.
	if n := f.ReadLPNs(0, 8, func() {}); n < 5 {
		t.Fatalf("randomized precondition too clustered: %d page reads", n)
	}
}

func TestPreconditionPartial(t *testing.T) {
	_, f := smallSetup(t, 64, 0.05)
	f.Precondition(0.5, false, sim.NewRNG(1, 1))
	u := f.Utilization()
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

// TestGCReclaimsSpace drives sustained random overwrites through a small
// device and verifies GC keeps it writable, conserves mapping integrity, and
// produces write amplification > 1.
func TestGCReclaimsSpace(t *testing.T) {
	eng, f := smallSetup(t, 64, 0.10)
	rng := sim.NewRNG(11, 13)
	// Write 3× the user capacity in random 8-LPN bursts.
	totalUnits := 3 * int(f.userLPNs) / 8
	pendingAcks := 0
	for i := 0; i < totalUnits; i++ {
		lpn := rng.Int64N(f.userLPNs - 8)
		pendingAcks++
		f.HostWrite(lpn, 8, func() { pendingAcks-- })
		// Periodically drain the event loop to let GC interleave.
		if i%32 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if pendingAcks != 0 {
		t.Fatalf("%d writes never acked (deadlock?)", pendingAcks)
	}
	c := f.Counters()
	if c.GCVictims == 0 || c.Erases == 0 {
		t.Fatalf("GC never ran: %+v", c)
	}
	if wa := c.WriteAmplification(); wa <= 1.0 {
		t.Fatalf("write amplification = %v, want > 1", wa)
	}
	if f.FreeSuperblocks() == 0 {
		t.Fatal("device wedged with zero free superblocks")
	}
	checkIntegrity(t, f)
}

// checkIntegrity verifies mapping/rmap/valid-count consistency.
func checkIntegrity(t *testing.T, f *FTL) {
	t.Helper()
	// Every mapped LPN's rmap entry must point back at it.
	var mappedCount int64
	for lpn := int64(0); lpn < f.userLPNs; lpn++ {
		ppn := f.mapping[lpn]
		if ppn == unmapped {
			continue
		}
		mappedCount++
		if got := f.rmap[ppn]; got != int32(lpn) {
			t.Fatalf("rmap[%d] = %d, want %d", ppn, got, lpn)
		}
	}
	// Per-superblock valid counts must equal live rmap entries.
	for sb := 0; sb < f.numSBs; sb++ {
		var live int32
		base := sb * f.slotsPerSB
		for s := 0; s < f.slotsPerSB; s++ {
			if f.rmap[base+s] != unmapped {
				live++
			}
		}
		if live != f.sbValid[sb] {
			t.Fatalf("sb %d: valid count %d, live %d", sb, f.sbValid[sb], live)
		}
	}
}

// Property: any sequence of small writes and trims preserves mapping
// integrity once the event loop drains.
func TestMappingIntegrityProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		eng, f := smallSetup(t, 16, 0.10)
		rng := sim.NewRNG(seed, seed^0xabcdef)
		for _, op := range ops {
			lpn := int64(op) % (f.userLPNs - 8)
			if op%5 == 0 {
				f.Trim(lpn, 4)
			} else {
				f.HostWrite(lpn, int64(op%8)+1, nil)
			}
			_ = rng
		}
		f.Flush(func() {})
		eng.Run()
		// Inline integrity check (cannot use t.Fatalf inside quick).
		for lpn := int64(0); lpn < f.userLPNs; lpn++ {
			ppn := f.mapping[lpn]
			if ppn != unmapped && f.rmap[ppn] != int32(lpn) {
				return false
			}
		}
		for sb := 0; sb < f.numSBs; sb++ {
			var live int32
			base := sb * f.slotsPerSB
			for s := 0; s < f.slotsPerSB; s++ {
				if f.rmap[base+s] != unmapped {
					live++
				}
			}
			if live != f.sbValid[sb] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAmplificationCounter(t *testing.T) {
	c := Counters{HostSlots: 100, GCSlots: 50}
	if wa := c.WriteAmplification(); wa != 1.5 {
		t.Fatalf("WA = %v", wa)
	}
	if wa := (Counters{}).WriteAmplification(); wa != 1 {
		t.Fatalf("empty WA = %v", wa)
	}
}

func TestWearAccounting(t *testing.T) {
	eng, f := smallSetup(t, 16, 0.10)
	rng := sim.NewRNG(5, 5)
	for i := 0; i < 4*int(f.userLPNs)/8; i++ {
		f.HostWrite(rng.Int64N(f.userLPNs-8), 8, nil)
		if i%64 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if f.Counters().Erases == 0 {
		t.Skip("no GC in this configuration")
	}
	var total int32
	for _, e := range f.sbErases {
		total += e
	}
	if uint64(total) != f.Counters().Erases {
		t.Fatalf("per-sb erases %d != counter %d", total, f.Counters().Erases)
	}
}
