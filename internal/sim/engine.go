// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event heap, queueing resources (servers and bandwidth
// pipes), and seedable latency distributions.
//
// The queueing resources dispatch through a pluggable FlowQueue scheduler
// (Server.SetQueue, Pipe.SetQueue): nil keeps the original FIFO path
// byte-identical, DRRQueue shares service among backlogged flows in
// proportion to their weights, and ReservationQueue adds work-conserving
// per-flow guaranteed rates on top of the weighted round.
//
// All simulated storage devices in this repository are built on top of this
// engine. Simulated time is measured in integer nanoseconds and is entirely
// decoupled from wall-clock time, so experiments are fast and reproducible.
package sim

import (
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit, e.g. "333µs" or "1.4ms".
func (d Duration) String() string {
	switch {
	case d < 0:
		return fmt.Sprintf("-%s", (-d).String())
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	}
}

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among same-time events
	// cfn+arg is the one callback representation: a long-lived bound method
	// plus a per-event argument. Function values and pointers are stored in
	// an interface word directly, so hot paths that complete with a
	// caller-supplied callback (e.g. Server visits) can schedule without
	// materializing a closure per event; plain func() callbacks ride the
	// same two fields via callClosure. A nil cfn advances the clock without
	// doing work. Keeping the struct to one func field + one interface
	// makes heap sifts move 40 bytes instead of 48 and drop a pointer word
	// from every write barrier — measurable at millions of events/s.
	cfn func(any)
	arg any
}

// callClosure invokes a plain func() callback stored in an event's arg
// word. Func values are pointer-shaped, so the any-boxing is free.
func callClosure(a any) { a.(func())() }

// less orders events by (time, sequence): a strict total order, so any
// heap arity yields the identical pop order.
func (ev event) less(o event) bool {
	if ev.at != o.at {
		return ev.at < o.at
	}
	return ev.seq < o.seq
}

// Engine is a single-threaded discrete-event simulation engine. It is not
// safe for concurrent use; all device models run inside its event loop.
//
// The pending-event set is split in two: a typed 4-ary min-heap for future
// events, and a FIFO ready ring for events scheduled at the current
// simulated time. Same-timestamp dispatch is the dominant pattern in the
// device models (completion callbacks chaining into dispatchers), and the
// ready ring turns each of those events into an O(1) append/pop instead of
// an O(log n) sift — while preserving the exact (time, sequence) execution
// order of a single heap, because ready events are appended in increasing
// sequence order and compared against the heap root before running.
type Engine struct {
	now    Time
	seq    uint64
	heap   []event // 4-ary min-heap ordered by event.less
	ready  []event // FIFO ring of events at the current time
	rhead  int     // ready ring head index
	nsteps uint64
	live   int // pending non-daemon events; Run stops when it hits zero

	daemonFn func(any) // cached runDaemon bound method (lazily built)
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset returns the engine to its initial state — clock at zero, no pending
// events, step and sequence counters cleared — while keeping the event
// storage for reuse. A reset engine behaves identically to a NewEngine one,
// so pooled engines (see AcquireEngine) preserve determinism.
func (e *Engine) Reset() {
	clearEvents(e.heap)
	clearEvents(e.ready[e.rhead:])
	e.heap = e.heap[:0]
	e.ready = e.ready[:0]
	e.rhead = 0
	e.now = 0
	e.seq = 0
	e.nsteps = 0
	e.live = 0
}

// clearEvents zeroes the slice so dropped callback closures are collectable.
func clearEvents(evs []event) {
	for i := range evs {
		evs[i] = event{}
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Pending returns the number of scheduled events not yet executed,
// daemon events included.
func (e *Engine) Pending() int { return len(e.heap) + len(e.ready) - e.rhead }

// Live returns the number of pending non-daemon events — the work that
// keeps Run going. Daemon observers use it to decide whether to
// reschedule themselves.
func (e *Engine) Live() int { return e.live }

// Schedule runs fn after delay d of simulated time. A negative delay is
// treated as zero (run as soon as the loop resumes, after already-queued
// same-time events).
func (e *Engine) Schedule(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now.Add(d), fn)
}

// At runs fn at absolute simulated time t. Times in the past are clamped to
// the current time. A nil fn advances the clock without doing work.
func (e *Engine) At(t Time, fn func()) {
	var cfn func(any)
	var arg any
	if fn != nil {
		cfn, arg = callClosure, fn
	}
	e.live++
	if t <= e.now {
		// Current-time events go straight to the ready ring: appended in
		// increasing sequence order, so FIFO order is execution order.
		e.seq++
		e.ready = append(e.ready, event{at: e.now, seq: e.seq, cfn: cfn, arg: arg})
		return
	}
	e.seq++
	e.push(event{at: t, seq: e.seq, cfn: cfn, arg: arg})
}

// ScheduleDaemon runs fn after delay d as a daemon event: it executes in
// the normal (time, sequence) order while non-daemon events remain, but
// it does not keep the simulation alive — Run returns, with the clock at
// the last non-daemon event, even if daemon events are still scheduled,
// and the leftover daemons are never executed. Observability ticks use
// this so periodic sampling can never extend a run's virtual time (an
// overshoot would perturb end-of-run snapshots of time-settled state
// such as the cleaner's debt drain).
func (e *Engine) ScheduleDaemon(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if e.daemonFn == nil {
		e.daemonFn = e.runDaemon
	}
	e.AtCall(e.now.Add(d), e.daemonFn, fn)
	e.live-- // daemons don't count as live work
}

// runDaemon executes a daemon event's callback. Step decremented live
// unconditionally when it popped the event, so compensate first: daemon
// events were never counted as live work.
func (e *Engine) runDaemon(a any) {
	e.live++
	a.(func())()
}

// ScheduleCall runs fn(arg) after delay d. It is Schedule for callers that
// already hold a long-lived fn (typically a bound method stored once at
// construction): passing the per-event state through arg avoids allocating
// a closure per scheduled event. Ordering is identical to Schedule.
func (e *Engine) ScheduleCall(d Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.AtCall(e.now.Add(d), fn, arg)
}

// AtCall runs fn(arg) at absolute simulated time t; see ScheduleCall.
func (e *Engine) AtCall(t Time, fn func(any), arg any) {
	e.live++
	e.seq++
	if t <= e.now {
		e.ready = append(e.ready, event{at: e.now, seq: e.seq, cfn: fn, arg: arg})
		return
	}
	e.push(event{at: t, seq: e.seq, cfn: fn, arg: arg})
}

// push inserts ev into the 4-ary heap.
func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !ev.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	e.heap = h
}

// pop removes and returns the heap minimum.
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{}
	h = h[:n]
	e.heap = h
	if n > 0 {
		// Sift last down from the root, choosing the least of up to four
		// children at each level. The (at, seq) keys of the running minimum
		// ride in locals so each comparison loads one candidate key instead
		// of re-reading two events from the slice.
		i := 0
		lat, lseq := last.at, last.seq
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			mat, mseq := h[c].at, h[c].seq
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if jat, jseq := h[j].at, h[j].seq; jat < mat || (jat == mat && jseq < mseq) {
					m, mat, mseq = j, jat, jseq
				}
			}
			if mat > lat || (mat == lat && mseq > lseq) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// next removes and returns the earliest pending event, honoring the
// (time, sequence) order across the heap and the ready ring. ok is false
// when no events remain.
func (e *Engine) next() (ev event, ok bool) {
	hasReady := e.rhead < len(e.ready)
	hasHeap := len(e.heap) > 0
	switch {
	case !hasReady && !hasHeap:
		return event{}, false
	case !hasReady:
		return e.pop(), true
	case hasHeap:
		// Ready events sit at the current time; a heap event can only
		// precede them when it shares that timestamp with a smaller
		// sequence number (it was scheduled before the clock reached now).
		if root := &e.heap[0]; root.at == e.now && root.seq < e.ready[e.rhead].seq {
			return e.pop(), true
		}
	}
	ev = e.ready[e.rhead]
	e.ready[e.rhead] = event{}
	e.rhead++
	if e.rhead == len(e.ready) {
		e.ready = e.ready[:0]
		e.rhead = 0
	}
	return ev, true
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	ev, ok := e.next()
	if !ok {
		return false
	}
	e.now = ev.at
	e.nsteps++
	// Decrement unconditionally; a daemon event's runDaemon wrapper
	// compensates, so live keeps counting only non-daemon work.
	e.live--
	if ev.cfn != nil {
		ev.cfn(ev.arg)
	}
	return true
}

// Run executes events until no live (non-daemon) work remains. Leftover
// daemon events are abandoned without advancing the clock.
func (e *Engine) Run() {
	for e.live > 0 {
		if !e.Step() {
			break
		}
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled exactly at t are executed.
func (e *Engine) RunUntil(t Time) {
	for {
		if e.rhead < len(e.ready) {
			// Ready events are always at the current time, which is <= t.
			e.Step()
			continue
		}
		if len(e.heap) == 0 || e.heap[0].at > t {
			break
		}
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Duration) { e.RunUntil(e.now.Add(d)) }
