package scenario

import (
	"context"
	"reflect"
	"testing"

	"essdsim/internal/expgrid"
	"essdsim/internal/qos"
)

// TestIsolationOrderingPinned pins the suite's headline ordering: across
// identical per-cell arrival streams, weighted-fair scheduling may not
// leave the victim worse off than fifo, and reservation may not leave it
// worse off than wfq. The comparisons are deterministic — every policy
// variant sees the same cell seeds — so the ordering is exact, not
// statistical.
func TestIsolationOrderingPinned(t *testing.T) {
	rep, err := RunIsolationComparison(context.Background(), IsolationComparison{Sweep: quickNeighbor()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Variants) != 3 {
		t.Fatalf("variants = %d, want fifo/wfq/reservation", len(rep.Variants))
	}
	byPolicy := map[qos.IsolationPolicy]IsolationVariant{}
	for _, v := range rep.Variants {
		byPolicy[v.Policy] = v
	}
	fifo := byPolicy[qos.IsolationFIFO]
	wfq := byPolicy[qos.IsolationWFQ]
	resv := byPolicy[qos.IsolationReservation]

	if wfq.MaxP999Inflation > fifo.MaxP999Inflation {
		t.Fatalf("wfq victim p99.9 inflation %.3f worse than fifo %.3f",
			wfq.MaxP999Inflation, fifo.MaxP999Inflation)
	}
	if resv.MaxP999Inflation > wfq.MaxP999Inflation {
		t.Fatalf("reservation victim p99.9 inflation %.3f worse than wfq %.3f",
			resv.MaxP999Inflation, wfq.MaxP999Inflation)
	}
	// Isolation must do real work in this configuration, not merely tie:
	// fifo lets the aggressors inflate the victim tail several-fold.
	if fifo.MaxP999Inflation < 2*wfq.MaxP999Inflation {
		t.Fatalf("fifo inflation %.3f not clearly above wfq %.3f — the suite no longer exercises contention",
			fifo.MaxP999Inflation, wfq.MaxP999Inflation)
	}
	// Debt-admission shaping: the neighbors' excess churn stays out of the
	// victim's observed debt, so isolation may not throttle the victim in
	// more cells than fifo does.
	if wfq.ThrottledCells > fifo.ThrottledCells {
		t.Fatalf("wfq throttled the victim in %d cells, fifo only %d",
			wfq.ThrottledCells, fifo.ThrottledCells)
	}
	// Control cells are scheduling-invariant: a lone tenant sees the same
	// latencies under every work-conserving policy.
	for _, v := range rep.Variants {
		for _, c := range v.Report.Cells {
			if c.Aggressors != 0 {
				continue
			}
			ctrl := fifo.Report.Cells[0]
			if c.VictimLat.P999 != ctrl.VictimLat.P999 {
				t.Fatalf("%s control cell p99.9 %v differs from fifo control %v",
					v.Policy, c.VictimLat.P999, ctrl.VictimLat.P999)
			}
		}
	}
}

// TestIsolationWorkerDeterminism extends the determinism satellite over
// the isolation axis: a wfq sweep is byte-identical at 1 and 8 workers.
func TestIsolationWorkerDeterminism(t *testing.T) {
	base := quickNeighbor()
	base.Isolation = qos.Isolation{Policy: qos.IsolationWFQ}
	s1 := base
	s1.Workers = 1
	r1, err := RunNeighbor(context.Background(), s1)
	if err != nil {
		t.Fatal(err)
	}
	s8 := base
	s8.Workers = 8
	r8, err := RunNeighbor(context.Background(), s8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("wfq neighbor sweep differs between 1 and 8 workers")
	}
}

// TestIsolationCacheWarm extends the cache satellite over the isolation
// axis: each policy variant caches separately (no cross-policy hits), and
// a warm re-run of a variant simulates zero new cells while reproducing
// the identical report.
func TestIsolationCacheWarm(t *testing.T) {
	cache := expgrid.NewCache(0)
	fifoSweep := quickNeighbor()
	fifoSweep.Cache = cache
	if _, err := RunNeighbor(context.Background(), fifoSweep); err != nil {
		t.Fatal(err)
	}

	wfqSweep := quickNeighbor()
	wfqSweep.Cache = cache
	wfqSweep.Isolation = qos.Isolation{Policy: qos.IsolationWFQ}
	cold, err := RunNeighbor(context.Background(), wfqSweep)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedCells != 0 {
		t.Fatalf("wfq run hit %d cells cached by the fifo run — policy variants must not share entries",
			cold.CachedCells)
	}

	warm, err := RunNeighbor(context.Background(), wfqSweep)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CachedCells != len(warm.Cells) {
		t.Fatalf("warm wfq run cached %d of %d cells", warm.CachedCells, len(warm.Cells))
	}
	warm.CachedCells = cold.CachedCells
	for i := range warm.Cells {
		warm.Cells[i].Cached = cold.Cells[i].Cached
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cache-warm wfq report differs from cold run")
	}
}
