package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"essdsim/internal/sim"
)

// Config switches observability on for a run or sweep. A nil Config
// disables both planes.
type Config struct {
	// SampleEvery traces every Nth request per volume (1 = every
	// request). Values below 1 are invalid.
	SampleEvery int
	// ProbeInterval is the simulated-time cadence of the state probes;
	// <= 0 disables the probe plane.
	ProbeInterval sim.Duration
}

// Enabled reports whether any observability plane is requested.
func (c *Config) Enabled() bool { return c != nil }

// Validate reports a descriptive error for nonsensical settings.
func (c *Config) Validate() error {
	if c == nil {
		return nil
	}
	if c.SampleEvery < 1 {
		return fmt.Errorf("obs: trace sample rate must be >= 1, got %d", c.SampleEvery)
	}
	return nil
}

// Span is one recorded stage of a traced request. Start/End are engine
// times; Wait is the portion of the interval spent queued rather than in
// service (for token gates the whole interval is waiting; for fabric
// pipes it includes the sampled hop latency). Policy names the
// scheduling decision that ordered the stage (fifo, wfq, reservation,
// throttled, exhausted...); Lane groups sequential stages of one
// request (vol, c0, c0/r1, ...) for the trace-event thread layout.
type Span struct {
	Req    int
	Volume string
	Flow   int
	Op     string
	Lane   string
	Stage  string
	Start  sim.Time
	End    sim.Time
	Wait   sim.Duration
	Policy string
	Detail string
}

// Tracer samples requests by submission sequence and accumulates their
// span records. One Tracer serves all volumes of one cell (one engine);
// it is not safe for concurrent use, matching the engine's single-thread
// discipline. The nil Tracer is inert.
type Tracer struct {
	sampleEvery int
	nextID      int
	spans       []Span
}

// NewTracer returns a tracer sampling every Nth request per volume
// (minimum 1).
func NewTracer(sampleEvery int) *Tracer {
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &Tracer{sampleEvery: sampleEvery}
}

// Start begins a trace for the seq-th request (counted from 0 per
// volume), returning nil — an inert Req — when the request is not
// sampled. Callers pass the returned Req through the request's stages
// and emit spans on it; the nil-fast Req keeps unsampled requests on
// the untouched hot path.
func (t *Tracer) Start(volume string, flow int, op string, seq uint64) *Req {
	if t == nil || seq%uint64(t.sampleEvery) != 0 {
		return nil
	}
	id := t.nextID
	t.nextID++
	return &Req{t: t, id: id, vol: volume, flow: flow, op: op}
}

// Spans returns the recorded spans in emission order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Req is one sampled request's trace context. The nil Req drops every
// span, so instrumentation sites need no enabled-check of their own.
type Req struct {
	t    *Tracer
	id   int
	vol  string
	flow int
	op   string
}

// Span records one stage interval on the given lane. Nil-receiver no-op.
func (r *Req) Span(lane, stage string, start, end sim.Time, wait sim.Duration, policy, detail string) {
	if r == nil {
		return
	}
	if wait < 0 {
		wait = 0
	}
	if span := end.Sub(start); wait > span {
		wait = span
	}
	r.t.spans = append(r.t.spans, Span{
		Req: r.id, Volume: r.vol, Flow: r.flow, Op: r.op,
		Lane: lane, Stage: stage, Start: start, End: end,
		Wait: wait, Policy: policy, Detail: detail,
	})
}

// Capture bundles one cell's observability output: the cell label plus
// whichever planes were enabled (nil when not).
type Capture struct {
	Label  string
	Tracer *Tracer
	Prober *Prober
}

// sortedSpans returns a capture's spans ordered by (request, start,
// lane, stage) — emission order is already deterministic, the sort makes
// the export layout stable under instrumentation reshuffles too.
func sortedSpans(t *Tracer) []Span {
	src := t.Spans()
	spans := make([]Span, len(src))
	copy(spans, src)
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Req != b.Req {
			return a.Req < b.Req
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		return a.Stage < b.Stage
	})
	return spans
}

func fmtSeconds(t sim.Time) string {
	return strconv.FormatFloat(sim.Duration(t).Seconds(), 'g', -1, 64)
}

func fmtDurSeconds(d sim.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// WriteTraceCSV writes every capture's spans as one deterministic CSV
// (docs/formats.md, "Request traces").
func WriteTraceCSV(w io.Writer, caps []*Capture) error {
	if _, err := io.WriteString(w, "cell,req,volume,flow,op,lane,stage,start_s,end_s,wait_s,policy,detail\n"); err != nil {
		return err
	}
	for _, c := range caps {
		if c == nil || c.Tracer == nil {
			continue
		}
		for _, s := range sortedSpans(c.Tracer) {
			_, err := fmt.Fprintf(w, "%s,%d,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s\n",
				csvField(c.Label), s.Req, csvField(s.Volume), s.Flow, s.Op,
				s.Lane, s.Stage, fmtSeconds(s.Start), fmtSeconds(s.End),
				fmtDurSeconds(s.Wait), s.Policy, csvField(s.Detail))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// csvField quotes a value if it contains CSV metacharacters (labels
// carry '|' and spaces but may also carry commas).
func csvField(s string) string {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ',', '"', '\n', '\r':
			return strconv.Quote(s)
		}
	}
	return s
}

// traceEvent is one Chrome trace-event record. Field order is fixed by
// the struct, so the JSON bytes are deterministic.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	// Ts/Dur must not be omitempty: a span starting at virtual time
	// zero (or an instantaneous one) still needs explicit ts/dur fields
	// for trace viewers. Metadata events carry pointers left nil.
	Ts   *float64       `json:"ts,omitempty"`
	Dur  *float64       `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteTraceEvents writes every capture's spans in Chrome trace-event
// JSON, loadable in Perfetto / chrome://tracing. Each (cell, volume)
// becomes a process; each traced request's lane becomes a thread, so
// spans on one thread are strictly sequential and nest trivially.
func WriteTraceEvents(w io.Writer, caps []*Capture) error {
	var events []traceEvent
	pid := 0
	for _, c := range caps {
		if c == nil || c.Tracer == nil {
			continue
		}
		spans := sortedSpans(c.Tracer)
		volPid := map[string]int{}
		type laneKey struct {
			req  int
			lane string
		}
		laneTid := map[laneKey]int{}
		nextTid := map[int]int{}
		for _, s := range spans {
			p, ok := volPid[s.Volume]
			if !ok {
				pid++
				p = pid
				volPid[s.Volume] = p
				name := s.Volume
				if c.Label != "" {
					name = c.Label + " " + s.Volume
				}
				events = append(events, traceEvent{
					Name: "process_name", Ph: "M", Pid: p,
					Args: map[string]any{"name": name},
				})
			}
			k := laneKey{req: s.Req, lane: s.Lane}
			tid, ok := laneTid[k]
			if !ok {
				nextTid[p]++
				tid = nextTid[p]
				laneTid[k] = tid
				events = append(events, traceEvent{
					Name: "thread_name", Ph: "M", Pid: p, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("req%d/%s", s.Req, s.Lane)},
				})
			}
			args := map[string]any{
				"req":     s.Req,
				"flow":    s.Flow,
				"op":      s.Op,
				"wait_us": s.Wait.Seconds() * 1e6,
			}
			if s.Policy != "" {
				args["policy"] = s.Policy
			}
			if s.Detail != "" {
				args["detail"] = s.Detail
			}
			ts := sim.Duration(s.Start).Seconds() * 1e6
			dur := s.End.Sub(s.Start).Seconds() * 1e6
			events = append(events, traceEvent{
				Name: s.Stage, Ph: "X", Pid: p, Tid: tid, Cat: "obs",
				Ts: &ts, Dur: &dur,
				Args: args,
			})
		}
	}
	doc := struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: events}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
