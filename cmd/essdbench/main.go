// Command essdbench is a fio-like benchmark front end for the simulated
// devices: it runs one workload (from flags or a fio job file) against a
// chosen device profile and prints a fio-style summary.
//
// Comma-separated values in -device, -rw, -bs, or -iodepth turn the run
// into a sweep: the cross product of the listed values executes as an
// experiment grid on -workers parallel workers (deterministic results,
// one fresh preconditioned device per cell) and prints one summary row
// per cell.
//
// A non-zero -rate switches to open-loop mode: requests issue on an
// arrival schedule (-arrival) instead of a closed queue-depth loop.
// Comma lists in -device, -rw, -bs, -rate, or -arrival then run as a
// parallel open-loop sweep over the cross product.
//
// A non-zero -slo-p99 switches to latency-SLO search mode: instead of
// measuring one offered rate, essdbench binary-searches the -slo-range for
// the highest rate whose steady-state p99 meets the target, reporting both
// the pre-exhaustion and the post-cliff (credit-floor) SLO-max rates of
// burstable tiers.
//
// With -cache FILE, SLO-search probes and closed/open sweep cells persist
// across invocations: a repeat sweep loads the file, skips every
// already-computed cell, and prints "N of M cells skipped (cache-warm)".
// Single (non-sweep) runs reject -cache rather than silently ignoring it.
//
// A non-empty -trace switches to trace-replay mode: the file (native text
// format, or MSR-Cambridge CSV with -trace-format msr) replays on every
// listed device as a parallel trace-replay sweep. MSR traces are fitted
// onto each device's scaled geometry first.
//
// All invalid flag and workload-spec combinations print a diagnostic to
// stderr and exit non-zero.
//
// Examples:
//
//	essdbench -device essd1 -rw randwrite -bs 4k -iodepth 1 -runtime 1s
//	essdbench -device ssd -rw randread -bs 256k -iodepth 16 -runtime 500ms
//	essdbench -device essd2 -job job.fio
//	essdbench -device essd1,ssd -rw randwrite,write -bs 4k,64k,256k -iodepth 1,8 -workers 8
//	essdbench -device gp2,gp2s -rw randwrite -bs 256k -rate 1500,3000 -arrival uniform,bursty -ops 4000
//	essdbench -device gp2s -rw randwrite -bs 256k -slo-p99 20ms -slo-range 200,3000
//	essdbench -device essd1,essd2 -trace msr-rows.csv -trace-format msr
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"essdsim"
	"essdsim/internal/fio"
	"essdsim/internal/profiling"
	"essdsim/internal/workload"
)

func main() {
	var (
		device   = flag.String("device", "essd1", "device profile(s): "+strings.Join(essdsim.ProfileNames(), ", "))
		rw       = flag.String("rw", "randread", "pattern(s): randread, randwrite, read, write, randrw")
		bs       = flag.String("bs", "4k", "I/O size(s) (k/m suffixes)")
		iodepth  = flag.String("iodepth", "1", "queue depth(s)")
		runtime  = flag.String("runtime", "1s", "measurement duration (simulated)")
		warmup   = flag.String("warmup", "100ms", "warmup excluded from stats")
		size     = flag.String("size", "", "stop after this many bytes instead of runtime")
		mixPct   = flag.Int("rwmixwrite", 50, "write percentage for randrw")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		jobFile  = flag.String("job", "", "fio job file (overrides workload flags)")
		precond  = flag.String("precondition", "auto", "auto, full, half, none")
		rate     = flag.String("rate", "0", "open-loop arrival rate(s) (req/s); 0 = closed loop at -iodepth")
		arrival  = flag.String("arrival", "uniform", "open-loop arrival shape(s): uniform, poisson, bursty")
		ops      = flag.Uint64("ops", 10000, "open-loop request count per cell (with -rate)")
		workers  = flag.Int("workers", 0, "parallel sweep cells (0 = GOMAXPROCS)")
		sloP99   = flag.Duration("slo-p99", 0, "latency-SLO search mode: find the highest rate with p99 under this")
		sloP999  = flag.Duration("slo-p999", 0, "additional p99.9 target for the SLO search")
		sloRange = flag.String("slo-range", "100,4000", "SLO search rate range min,max (req/s)")
		sloTol   = flag.Float64("slo-tol", 0, "SLO search convergence width in req/s (default range/64)")
		cacheF   = flag.String("cache", "", "sweep-cache JSON file for SLO probes and sweep cells (loaded if present, saved on exit)")
		traceF   = flag.String("trace", "", "trace-replay mode: replay this trace file on the device(s)")
		traceFmt = flag.String("trace-format", "text", "trace file format: text (native) or msr (MSR-Cambridge CSV)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
		isoName  = flag.String("isolation", "fifo", "backend QoS isolation policy: fifo, wfq, or reservation (essd-class devices)")
		qosWt    = flag.Float64("weight", 0, "volume scheduling weight under -isolation wfq/reservation (0 = default 1)")
		qosResv  = flag.Float64("reserved-bps", 0, "volume reserved backend bytes/sec under -isolation reservation")
		traceOut = flag.String("trace-out", "", "single runs: write sampled request traces to this file (.json = Chrome trace events, else CSV)")
		traceSmp = flag.Int("trace-sample", 64, "trace every Nth request when tracing is on")
		probeOut = flag.String("probe-out", "", "single runs: write state-probe series to this file (.json or CSV); requires -probe-interval")
		probeIvl = flag.Duration("probe-interval", 0, "simulated-time cadence of state probes (e.g. 10ms)")
		verbose  = flag.Bool("v", false, "print per-cell sweep progress (elapsed/ETA, cached counts) to stderr")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected argument %q (essdbench takes no positional arguments)", flag.Arg(0)))
	}
	verboseProgress = *verbose
	if *traceSmp < 1 {
		fatal(fmt.Errorf("-trace-sample wants a positive count, got %d", *traceSmp))
	}
	if *probeOut != "" && *probeIvl <= 0 {
		fatal(fmt.Errorf("-probe-out requires a positive -probe-interval, got %s", *probeIvl))
	}
	if *traceOut != "" || *probeOut != "" {
		obsOut.traceOut, obsOut.probeOut = *traceOut, *probeOut
		obsOut.cfg = &essdsim.ObsConfig{
			SampleEvery:   *traceSmp,
			ProbeInterval: essdsim.Duration(probeIvl.Nanoseconds()),
		}
	}
	stopProfiles, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()
	if *mixPct < 0 || *mixPct > 100 {
		fatal(fmt.Errorf("-rwmixwrite %d out of [0, 100]", *mixPct))
	}
	isoPolicy, err := essdsim.ParseIsolationPolicy(*isoName)
	if err != nil {
		fatal(err)
	}
	devQoS.iso = essdsim.Isolation{Policy: isoPolicy}
	devQoS.weight = *qosWt
	devQoS.resv = *qosResv
	if (devQoS.weight != 0 || devQoS.resv != 0) && !devQoS.iso.Enabled() {
		fatal(fmt.Errorf("-weight/-reserved-bps need -isolation wfq or reservation; fifo ignores shares"))
	}

	rates, err := parseRates(*rate)
	if err != nil {
		fatal(err)
	}

	if *traceF != "" { // trace replay
		switch {
		case *jobFile != "":
			fatal(fmt.Errorf("-job cannot be combined with -trace replay mode"))
		case *size != "":
			fatal(fmt.Errorf("-size cannot be combined with -trace; the trace sets the load"))
		case len(rates) > 0:
			fatal(fmt.Errorf("-rate cannot be combined with -trace; the trace sets the arrival times"))
		case *sloP99 > 0 || *sloP999 > 0:
			fatal(fmt.Errorf("-slo-p99 cannot be combined with -trace replay mode"))
		case *cacheF != "":
			fatal(fmt.Errorf("-cache is not supported in -trace replay mode"))
		case obsOut.cfg != nil:
			fatal(fmt.Errorf("-trace-out/-probe-out instrument single runs, not -trace replay mode"))
		case strings.ContainsRune(*rw+*bs+*iodepth+*arrival, ','):
			fatal(fmt.Errorf("-trace replays ignore workload axes; only -device may be a list"))
		}
		runTraceReplay(*traceF, *traceFmt, *device, *precond, *seed, *workers)
		return
	}

	if *sloP99 > 0 || *sloP999 > 0 { // latency-SLO search
		switch {
		case *jobFile != "":
			fatal(fmt.Errorf("-job cannot be combined with -slo-p99 search mode"))
		case *size != "":
			fatal(fmt.Errorf("-size cannot be combined with -slo-p99 search mode"))
		case len(rates) > 0:
			fatal(fmt.Errorf("-rate cannot be combined with -slo-p99; the search picks the rates"))
		case obsOut.cfg != nil:
			fatal(fmt.Errorf("-trace-out/-probe-out instrument single runs, not -slo-p99 search mode"))
		case strings.ContainsRune(*device+*rw+*bs+*arrival+*iodepth, ','):
			fatal(fmt.Errorf("-slo-p99 search mode takes no axis lists: a single device, pattern, size, and arrival"))
		}
		runSLOSearch(*device, *rw, *bs, *arrival, *sloRange, *sloTol,
			*sloP99, *sloP999, *ops, *mixPct, *precond, *seed, *cacheF)
		return
	}

	if len(rates) > 0 { // open loop
		switch {
		case *jobFile != "":
			fatal(fmt.Errorf("-job cannot be combined with -rate (open loop)"))
		case *size != "":
			fatal(fmt.Errorf("-size cannot be combined with -rate; use -ops"))
		case strings.ContainsRune(*iodepth, ','):
			fatal(fmt.Errorf("-iodepth lists are a closed-loop axis; they cannot be combined with -rate"))
		}
		if strings.ContainsRune(*device+*rw+*bs+*rate+*arrival, ',') {
			if obsOut.cfg != nil {
				fatal(fmt.Errorf("-trace-out/-probe-out instrument single runs, not sweeps"))
			}
			runOpenSweep(*device, *rw, *bs, *arrival, rates, *ops, *mixPct, *precond, *seed, *workers, *cacheF)
			return
		}
		if *cacheF != "" {
			fatal(fmt.Errorf("-cache needs a sweep (comma-list axes) or -slo-p99 search; a single run is never memoized"))
		}
		eng := essdsim.NewEngine()
		dev, err := newDevice(*device, eng, *seed)
		if err != nil {
			fatal(err)
		}
		cap := instrumentObs(dev, *device)
		runOpenLoop(dev, *rw, *bs, rates[0], *arrival, *ops, *mixPct, *seed, *precond)
		dumpObs(cap)
		return
	}

	if strings.ContainsRune(*device+*rw+*bs+*iodepth, ',') {
		switch {
		case *jobFile != "":
			fatal(fmt.Errorf("-job cannot be combined with comma-list sweep flags"))
		case *size != "":
			fatal(fmt.Errorf("-size cannot be combined with comma-list sweep flags; use -runtime"))
		case obsOut.cfg != nil:
			fatal(fmt.Errorf("-trace-out/-probe-out instrument single runs, not sweeps"))
		}
		runSweep(*device, *rw, *bs, *iodepth, *runtime, *warmup, *precond, *mixPct, *seed, *workers, *cacheF)
		return
	}
	if *cacheF != "" {
		fatal(fmt.Errorf("-cache needs a sweep (comma-list axes) or -slo-p99 search; a single run is never memoized"))
	}

	eng := essdsim.NewEngine()
	dev, err := newDevice(*device, eng, *seed)
	if err != nil {
		fatal(err)
	}
	cap := instrumentObs(dev, *device)

	var jobs []fio.Job
	if *jobFile != "" {
		f, err := os.Open(*jobFile)
		if err != nil {
			fatal(err)
		}
		jobs, err = fio.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if len(jobs) == 0 {
			fatal(fmt.Errorf("job file %s defines no jobs", *jobFile))
		}
	} else {
		pattern, err := workload.ParsePattern(*rw)
		if err != nil {
			fatal(err)
		}
		blockSize, err := fio.ParseSize(*bs)
		if err != nil {
			fatal(err)
		}
		depth, err := strconv.Atoi(*iodepth)
		if err != nil {
			fatal(err)
		}
		spec := essdsim.Workload{
			Pattern:    pattern,
			BlockSize:  blockSize,
			QueueDepth: depth,
			WriteRatio: float64(*mixPct) / 100,
			Seed:       *seed,
		}
		if *size != "" {
			spec.TotalBytes, err = fio.ParseSize(*size)
			if err != nil {
				fatal(err)
			}
		} else {
			spec.Duration, err = fio.ParseDuration(*runtime)
			if err != nil {
				fatal(err)
			}
			spec.Warmup, err = fio.ParseDuration(*warmup)
			if err != nil {
				fatal(err)
			}
		}
		jobs = []fio.Job{{Name: "cmdline", Spec: spec}}
	}

	mode, err := parsePrecond(*precond)
	if err != nil {
		fatal(err)
	}
	// Validate every job before running any: workload.Run panics on a bad
	// spec, and a panic's stack trace is no way to report a flag typo.
	for _, job := range jobs {
		if err := job.Spec.Validate(dev); err != nil {
			fatal(fmt.Errorf("job %s: %w", job.Name, err))
		}
	}
	for _, job := range jobs {
		switch mode {
		case essdsim.PrecondAuto:
			essdsim.Precondition(dev, job.Spec.Pattern.IsWrite())
		case essdsim.PrecondFull:
			essdsim.Precondition(dev, false)
		case essdsim.PrecondWrites:
			essdsim.Precondition(dev, true)
		}
		fmt.Printf("=== job %s ===\n", job.Name)
		res := essdsim.Run(dev, job.Spec)
		essdsim.FormatWorkloadResult(os.Stdout, res)
	}
	dumpObs(cap)
}

// parseRates parses a comma list of open-loop rates. An empty list (every
// value zero) means closed-loop mode; mixing zero and non-zero rates is an
// error.
func parseRates(s string) ([]float64, error) {
	var rates []float64
	zero := false
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -rate %q", f)
		}
		if r <= 0 {
			zero = true
			continue
		}
		rates = append(rates, r)
	}
	if zero && len(rates) > 0 {
		return nil, fmt.Errorf("-rate mixes zero (closed loop) and open-loop rates")
	}
	return rates, nil
}

// runTraceReplay replays one trace file on every listed device profile as
// a parallel trace-replay sweep and prints one summary row per device.
// MSR-format traces are fitted onto each device's scaled geometry.
func runTraceReplay(file, format, devices, precond string, seed uint64, workers int) {
	f, err := os.Open(file)
	if err != nil {
		fatal(err)
	}
	recs, err := essdsim.ReadTraceFormat(f, format)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if len(recs) == 0 {
		fatal(fmt.Errorf("trace %s has no records", file))
	}
	sw := essdsim.Sweep{
		Kind:     essdsim.SweepTraceReplay,
		Seed:     seed,
		Label:    "essdbench-trace",
		Variant:  qosVariant(),
		Trace:    recs,
		FitTrace: format == "msr",
	}
	var names []string
	for _, name := range strings.Split(devices, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	sw.Devices = profileDevices(names...)
	if sw.Precondition, err = parsePrecond(precond); err != nil {
		fatal(err)
	}
	fmt.Printf("trace replay: %d records on %d devices\n", len(recs), len(sw.Devices))
	fmt.Printf("%-8s %10s %12s %11s %9s %8s %11s %11s\n",
		"device", "ops", "bytes", "elapsed", "stretch", "peak-q", "p50", "p99.9")
	results, err := essdsim.RunSweep(context.Background(), sw, workers)
	if err != nil {
		fatal(err)
	}
	for _, r := range results {
		s := r.Replay.Lat.Summarize()
		stretch := "n/a"
		if r.Replay.Nominal > 0 {
			stretch = fmt.Sprintf("%.2fx", r.Replay.Stretch)
		}
		fmt.Printf("%-8s %10d %12d %11v %9s %8d %11v %11v\n",
			r.DeviceName, r.Replay.Ops, r.Replay.Bytes, r.Replay.Elapsed,
			stretch, r.Replay.MaxOutstanding, s.P50, s.P999)
	}
}

// runSLOSearch binary-searches offered rate for the highest rate whose
// steady-state tail latency meets the target, on one device profile.
func runSLOSearch(device, rws, sizes, arrivals, rateRange string, tol float64,
	p99, p999 time.Duration, ops uint64, mixPct int, precond string, seed uint64, cacheFile string) {
	pattern, err := workload.ParsePattern(rws)
	if err != nil {
		fatal(err)
	}
	blockSize, err := fio.ParseSize(sizes)
	if err != nil {
		fatal(err)
	}
	arr, err := workload.ParseArrival(arrivals)
	if err != nil {
		fatal(err)
	}
	mode, err := parsePrecond(precond)
	if err != nil {
		fatal(err)
	}
	parts := strings.Split(rateRange, ",")
	if len(parts) != 2 {
		fatal(fmt.Errorf("-slo-range wants min,max (req/s), got %q", rateRange))
	}
	minRate, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	maxRate, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err1 != nil || err2 != nil || minRate <= 0 || maxRate <= minRate {
		fatal(fmt.Errorf("bad -slo-range %q (want 0 < min < max)", rateRange))
	}

	var cache *essdsim.SweepCache
	if cacheFile != "" {
		cache = essdsim.NewSweepCache(0)
		if err := cache.LoadFile(cacheFile); err != nil {
			fatal(err)
		}
	}
	search := essdsim.SLOSearch{
		Device:        profileDevices(device)[0],
		Variant:       qosVariant(),
		Pattern:       pattern,
		BlockSize:     blockSize,
		WriteRatioPct: mixPct,
		Arrival:       arr,
		MinRate:       minRate,
		MaxRate:       maxRate,
		Tolerance:     tol,
		Target: essdsim.SLOTarget{
			P99:  essdsim.Duration(p99.Nanoseconds()),
			P999: essdsim.Duration(p999.Nanoseconds()),
		},
		MaxOps:       ops * 6, // -ops bounds one probe's nominal length
		Precondition: mode,
		Cache:        cache,
		Seed:         seed,
	}
	if search.MaxOps == 0 {
		search.MaxOps = 60000
	}
	rep, err := essdsim.SearchSLO(context.Background(), search)
	if err != nil {
		fatal(err)
	}
	essdsim.FormatSLOReport(os.Stdout, rep)
	if cache != nil {
		if err := cache.SaveFile(cacheFile); err != nil {
			fatal(err)
		}
	}
}

// runOpenLoop issues requests on an arrival schedule instead of a closed
// loop, exposing the queueing that Implication #4 is about.
func runOpenLoop(dev essdsim.Device, rw, bs string, rate float64,
	arrival string, ops uint64, mixPct int, seed uint64, precond string) {
	pattern, err := workload.ParsePattern(rw)
	if err != nil {
		fatal(err)
	}
	blockSize, err := fio.ParseSize(bs)
	if err != nil {
		fatal(err)
	}
	arr, err := workload.ParseArrival(arrival)
	if err != nil {
		fatal(err)
	}
	mode, err := parsePrecond(precond)
	if err != nil {
		fatal(err)
	}
	switch mode {
	case essdsim.PrecondAuto:
		essdsim.Precondition(dev, pattern.IsWrite())
	case essdsim.PrecondFull:
		essdsim.Precondition(dev, false)
	case essdsim.PrecondWrites:
		essdsim.Precondition(dev, true)
	}
	spec := workload.OpenSpec{
		Pattern:    pattern,
		BlockSize:  blockSize,
		WriteRatio: float64(mixPct) / 100,
		RatePerSec: rate,
		Arrival:    arr,
		Count:      ops,
		Seed:       seed,
	}
	if err := spec.Validate(dev); err != nil {
		fatal(err)
	}
	res := workload.RunOpen(dev, spec)
	s := res.Lat.Summarize()
	fmt.Printf("%s: open-loop %s bs=%s rate=%.0f/s arrivals=%s\n",
		res.Device, pattern, bs, rate, arr)
	fmt.Printf("  ops=%d elapsed=%v peak-outstanding=%d\n",
		res.Ops, res.Elapsed, res.MaxOutstanding)
	fmt.Printf("  lat avg=%v p50=%v p99=%v p99.9=%v max=%v\n",
		s.Mean, s.P50, s.P99, s.P999, s.Max)
}

// runCachedSweep executes a sweep with the optional persistent result
// cache attached: cells already in the cache are skipped, every completed
// sweep is saved back, and the returned report function prints the
// "N of M cells skipped" line (call it after the result rows). Without a
// cache path the sweep just runs and the report function is a no-op.
func runCachedSweep(sw essdsim.Sweep, workers int, cachePath string) ([]essdsim.SweepCellResult, func()) {
	var cache *essdsim.SweepCache
	if cachePath != "" {
		cache = essdsim.NewSweepCache(0)
		if err := cache.LoadFile(cachePath); err != nil {
			fatal(err)
		}
		sw.Cache = cache
	}
	var last essdsim.SweepProgress
	runner := essdsim.SweepRunner{Workers: workers, OnProgress: func(p essdsim.SweepProgress) {
		last = p
		if verboseProgress {
			fmt.Fprintf(os.Stderr, "sweep: %s\n", p)
		}
	}}
	results, err := runner.Run(context.Background(), sw)
	if err != nil {
		fatal(err)
	}
	return results, func() {
		if cache == nil {
			return
		}
		fmt.Printf("%d of %d cells skipped (cache-warm)\n", last.Cached, last.Total)
		if err := cache.SaveFile(cachePath); err != nil {
			fatal(err)
		}
	}
}

// runOpenSweep executes the cross product of comma-separated device,
// pattern, size, arrival, and rate lists as a parallel open-loop grid and
// prints one summary row per cell.
func runOpenSweep(devices, rws, sizes, arrivals string, rates []float64,
	ops uint64, mixPct int, precond string, seed uint64, workers int, cachePath string) {
	sw := essdsim.Sweep{Kind: essdsim.SweepOpen, Seed: seed, Label: "essdbench-open", Variant: qosVariant()}
	var names []string
	for _, name := range strings.Split(devices, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	sw.Devices = profileDevices(names...)
	mixed := false
	for _, s := range strings.Split(rws, ",") {
		p, err := workload.ParsePattern(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		mixed = mixed || p == essdsim.Mixed
		sw.Patterns = append(sw.Patterns, p)
	}
	for _, s := range strings.Split(sizes, ",") {
		bs, err := fio.ParseSize(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		sw.BlockSizes = append(sw.BlockSizes, bs)
	}
	for _, s := range strings.Split(arrivals, ",") {
		arr, err := workload.ParseArrival(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		sw.Arrivals = append(sw.Arrivals, arr)
	}
	sw.RatesPerSec = rates
	sw.OpenOps = ops
	if mixed {
		sw.WriteRatiosPct = []int{mixPct}
	}
	var err error
	if sw.Precondition, err = parsePrecond(precond); err != nil {
		fatal(err)
	}

	fmt.Printf("open-loop sweep: %d cells on %d devices\n",
		len(sw.Cells()), len(sw.Devices))
	fmt.Printf("%-8s %-10s %-7s %-8s %9s %11s %11s %11s %8s\n",
		"device", "rw", "bs", "arrival", "rate/s", "MB/s", "p50", "p99.9", "peak-q")
	results, reportCache := runCachedSweep(sw, workers, cachePath)
	for _, r := range results {
		s := r.Open.Lat.Summarize()
		fmt.Printf("%-8s %-10s %-7s %-8s %9.0f %11.1f %11v %11v %8d\n",
			r.DeviceName, r.Pattern, sizeLabel(r.BlockSize), r.Arrival,
			r.RatePerSec, r.Open.Throughput()/1e6, s.P50, s.P999,
			r.Open.MaxOutstanding)
	}
	reportCache()
}

// runSweep executes the cross product of comma-separated device, pattern,
// size, and depth lists as a parallel experiment grid and prints one
// summary row per cell.
func runSweep(devices, rws, sizes, depths, runtime, warmup, precond string, mixPct int, seed uint64, workers int, cachePath string) {
	sw := essdsim.Sweep{Seed: seed, Label: "essdbench", Variant: qosVariant()}
	var names []string
	for _, name := range strings.Split(devices, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	sw.Devices = profileDevices(names...)
	mixed := false
	for _, s := range strings.Split(rws, ",") {
		p, err := workload.ParsePattern(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		mixed = mixed || p == essdsim.Mixed
		sw.Patterns = append(sw.Patterns, p)
	}
	for _, s := range strings.Split(sizes, ",") {
		bs, err := fio.ParseSize(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		sw.BlockSizes = append(sw.BlockSizes, bs)
	}
	for _, s := range strings.Split(depths, ",") {
		qd, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatal(err)
		}
		sw.QueueDepths = append(sw.QueueDepths, qd)
	}
	if mixed {
		sw.WriteRatiosPct = []int{mixPct}
	}
	var err error
	if sw.CellDuration, err = fio.ParseDuration(runtime); err != nil {
		fatal(err)
	}
	if sw.CellDuration <= 0 {
		fatal(fmt.Errorf("sweep mode needs -runtime > 0"))
	}
	if sw.Warmup, err = fio.ParseDuration(warmup); err != nil {
		fatal(err)
	}
	if sw.Warmup == 0 {
		sw.Warmup = -1 // explicit -warmup 0: really no warmup, not the default
	}
	if sw.Precondition, err = parsePrecond(precond); err != nil {
		fatal(err)
	}

	total := len(sw.Devices) * len(sw.Patterns) * len(sw.BlockSizes) * len(sw.QueueDepths)
	fmt.Printf("sweep: %d cells on %d devices\n", total, len(sw.Devices))
	fmt.Printf("%-8s %-10s %-7s %-4s %11s %11s %11s %11s\n",
		"device", "rw", "bs", "QD", "MB/s", "IOPS", "avg", "p99.9")
	results, reportCache := runCachedSweep(sw, workers, cachePath)
	for _, r := range results {
		s := r.Res.Lat.Summarize()
		fmt.Printf("%-8s %-10s %-7s %-4d %11.1f %11.0f %11v %11v\n",
			r.DeviceName, r.Pattern, sizeLabel(r.BlockSize), r.QueueDepth,
			r.Res.Throughput()/1e6, r.Res.IOPS(), s.Mean, s.P999)
	}
	reportCache()
}

// parsePrecond maps the -precondition flag to a sweep mode; the single-run
// path interprets the same modes through essdsim.Precondition calls.
func parsePrecond(s string) (essdsim.SweepPrecond, error) {
	switch s {
	case "auto":
		return essdsim.PrecondAuto, nil
	case "full":
		return essdsim.PrecondFull, nil
	case "half":
		return essdsim.PrecondWrites, nil
	case "none":
		return essdsim.PrecondNone, nil
	default:
		return 0, fmt.Errorf("unknown -precondition %q", s)
	}
}

func sizeLabel(bs int64) string {
	switch {
	case bs >= 1<<20 && bs%(1<<20) == 0:
		return fmt.Sprintf("%dm", bs>>20)
	case bs >= 1<<10 && bs%(1<<10) == 0:
		return fmt.Sprintf("%dk", bs>>10)
	default:
		return fmt.Sprintf("%d", bs)
	}
}

// devQoS carries the backend isolation policy and per-volume QoS share
// from the flags to every device construction site; the zero value is the
// original FIFO stack.
var devQoS struct {
	iso    essdsim.Isolation
	weight float64
	resv   float64
}

func qosEnabled() bool {
	return devQoS.iso.Enabled() || devQoS.weight != 0 || devQoS.resv != 0
}

// qosVariant keys cache entries for isolated runs: same seeds and
// arrivals as fifo (deltas are pure scheduling effects), distinct entries.
func qosVariant() string {
	if !qosEnabled() {
		return ""
	}
	return fmt.Sprintf("iso:%s|w%g|r%g", devQoS.iso.Signature(), devQoS.weight, devQoS.resv)
}

func newDevice(name string, eng *essdsim.Engine, seed uint64) (essdsim.Device, error) {
	return essdsim.NewDeviceQoS(name, devQoS.iso, devQoS.weight, devQoS.resv, eng, seed)
}

func profileDevices(names ...string) []essdsim.NamedFactory {
	if !qosEnabled() {
		return essdsim.ProfileDevices(names...)
	}
	return essdsim.ProfileDevicesQoS(devQoS.iso, devQoS.weight, devQoS.resv, names...)
}

// obsOut carries the observability flags to the single-run paths; the
// zero value (no -trace-out/-probe-out) is fully off.
var obsOut struct {
	cfg      *essdsim.ObsConfig
	traceOut string
	probeOut string
}

// verboseProgress mirrors -v: per-cell sweep progress lines on stderr.
var verboseProgress bool

// instrumentObs attaches an observability capture to a single-run device
// when the obs flags are set; nil (and no-op) otherwise. Non-elastic
// devices are a fatal flag error — they have no backend to observe.
func instrumentObs(dev essdsim.Device, label string) *essdsim.ObsCapture {
	if obsOut.cfg == nil {
		return nil
	}
	cap, err := essdsim.InstrumentDevice(dev, label, obsOut.cfg)
	if err != nil {
		fatal(err)
	}
	return cap
}

// dumpObs writes the capture's spans and probe series to the -trace-out
// and -probe-out paths (.json selects the JSON writers, anything else CSV).
func dumpObs(cap *essdsim.ObsCapture) {
	if cap == nil {
		return
	}
	caps := []*essdsim.ObsCapture{cap}
	if obsOut.traceOut != "" {
		if err := writeObsFile(obsOut.traceOut, caps, essdsim.WriteTraceEvents, essdsim.WriteTraceCSV); err != nil {
			fatal(err)
		}
	}
	if obsOut.probeOut != "" {
		if err := writeObsFile(obsOut.probeOut, caps, essdsim.WriteProbesJSON, essdsim.WriteProbesCSV); err != nil {
			fatal(err)
		}
	}
}

func writeObsFile(path string, caps []*essdsim.ObsCapture,
	jsonFn, csvFn func(io.Writer, []*essdsim.ObsCapture) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fn := csvFn
	if strings.HasSuffix(path, ".json") {
		fn = jsonFn
	}
	err = fn(f, caps)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "essdbench:", err)
	os.Exit(1)
}
