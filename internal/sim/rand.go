package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source for simulation components. Each
// component derives its own stream from a root seed so that adding or
// removing one component does not perturb the draws seen by another.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator seeded from the two words.
func NewRNG(seed1, seed2 uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(seed1, seed2))}
}

// Derive returns a child RNG whose stream is a pure function of the parent
// seed material and the label, independent of draws made from the parent.
func (r *RNG) Derive(label string) *RNG {
	var h1, h2 uint64 = 0xcbf29ce484222325, 0x9e3779b97f4a7c15
	for i := 0; i < len(label); i++ {
		h1 = (h1 ^ uint64(label[i])) * 0x100000001b3
		h2 = (h2 + uint64(label[i])*0x9e3779b97f4a7c15) ^ (h2 >> 29)
	}
	// Consumes one draw from the parent stream; derivation order is part of
	// the deterministic construction sequence.
	return NewRNG(h1^r.src.Uint64(), h2)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform int in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Int64N returns a uniform int64 in [0, n).
func (r *RNG) Int64N(n int64) int64 { return r.src.Int64N(n) }

// Uint64 returns a uniform uint64.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Dist is a distribution of durations, used for software/network latency
// components.
type Dist interface {
	// Sample draws one duration from the distribution.
	Sample(r *RNG) Duration
	// Mean returns the distribution mean.
	Mean() Duration
}

// Const is a degenerate distribution that always returns V.
type Const struct{ V Duration }

// Sample implements Dist.
func (c Const) Sample(*RNG) Duration { return c.V }

// Mean implements Dist.
func (c Const) Mean() Duration { return c.V }

// LogNormal is a lognormal duration distribution parameterized by its
// median and the sigma of the underlying normal. Lognormal latencies are
// the standard model for software/network service-time jitter.
type LogNormal struct {
	Median Duration // exp(mu)
	Sigma  float64  // sigma of ln(X)
}

// Sample implements Dist.
func (l LogNormal) Sample(r *RNG) Duration {
	if l.Median <= 0 {
		return 0
	}
	x := float64(l.Median) * math.Exp(l.Sigma*r.NormFloat64())
	return Duration(x)
}

// Mean implements Dist.
func (l LogNormal) Mean() Duration {
	return Duration(float64(l.Median) * math.Exp(l.Sigma*l.Sigma/2))
}

// Spiked wraps a base distribution with rare latency spikes: with
// probability P a sample takes Spike instead of (in addition to) the base
// draw. This models tail events such as retransmits, log-structured index
// misses, or background interference, and is what gives the simulated ESSDs
// their realistic P99.9/P50 ratios.
type Spiked struct {
	Base  Dist
	P     float64 // spike probability per sample
	Spike Dist    // extra latency added when a spike occurs
}

// Sample implements Dist.
func (s Spiked) Sample(r *RNG) Duration {
	d := s.Base.Sample(r)
	if s.P > 0 && r.Float64() < s.P {
		d += s.Spike.Sample(r)
	}
	return d
}

// Mean implements Dist.
func (s Spiked) Mean() Duration {
	return s.Base.Mean() + Duration(s.P*float64(s.Spike.Mean()))
}

// Weighted pairs a distribution with a selection weight for Mixture.
type Weighted struct {
	W float64
	D Dist
}

// Mixture draws from one of several component distributions with
// probability proportional to the weights. It models multi-modal service
// times such as TLC flash program latencies (fast LSB vs slow MSB pages).
type Mixture struct {
	Components []Weighted
}

// Sample implements Dist.
func (m Mixture) Sample(r *RNG) Duration {
	var total float64
	for _, c := range m.Components {
		total += c.W
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for _, c := range m.Components {
		if x < c.W {
			return c.D.Sample(r)
		}
		x -= c.W
	}
	return m.Components[len(m.Components)-1].D.Sample(r)
}

// Mean implements Dist.
func (m Mixture) Mean() Duration {
	var total, acc float64
	for _, c := range m.Components {
		total += c.W
		acc += c.W * float64(c.D.Mean())
	}
	if total <= 0 {
		return 0
	}
	return Duration(acc / total)
}

// Shifted adds a constant offset to every sample of Base.
type Shifted struct {
	Offset Duration
	Base   Dist
}

// Sample implements Dist.
func (s Shifted) Sample(r *RNG) Duration { return s.Offset + s.Base.Sample(r) }

// Mean implements Dist.
func (s Shifted) Mean() Duration { return s.Offset + s.Base.Mean() }
