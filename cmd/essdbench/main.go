// Command essdbench is a fio-like benchmark front end for the simulated
// devices: it runs one workload (from flags or a fio job file) against a
// chosen device profile and prints a fio-style summary.
//
// Examples:
//
//	essdbench -device essd1 -rw randwrite -bs 4k -iodepth 1 -runtime 1s
//	essdbench -device ssd -rw randread -bs 256k -iodepth 16 -runtime 500ms
//	essdbench -device essd2 -job job.fio
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"essdsim"
	"essdsim/internal/fio"
	"essdsim/internal/workload"
)

func main() {
	var (
		device  = flag.String("device", "essd1", "device profile: "+strings.Join(essdsim.ProfileNames(), ", "))
		rw      = flag.String("rw", "randread", "pattern: randread, randwrite, read, write, randrw")
		bs      = flag.String("bs", "4k", "I/O size (k/m suffixes)")
		iodepth = flag.Int("iodepth", 1, "queue depth")
		runtime = flag.String("runtime", "1s", "measurement duration (simulated)")
		warmup  = flag.String("warmup", "100ms", "warmup excluded from stats")
		size    = flag.String("size", "", "stop after this many bytes instead of runtime")
		mixPct  = flag.Int("rwmixwrite", 50, "write percentage for randrw")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		jobFile = flag.String("job", "", "fio job file (overrides workload flags)")
		precond = flag.String("precondition", "auto", "auto, full, half, none")
		rate    = flag.Float64("rate", 0, "open-loop arrival rate (req/s); 0 = closed loop at -iodepth")
		arrival = flag.String("arrival", "uniform", "open-loop arrivals: uniform, poisson, bursty")
		ops     = flag.Uint64("ops", 10000, "open-loop request count (with -rate)")
	)
	flag.Parse()

	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(*device, eng, *seed)
	if err != nil {
		fatal(err)
	}

	if *rate > 0 {
		runOpenLoop(dev, *rw, *bs, *rate, *arrival, *ops, *seed, *precond)
		return
	}

	var jobs []fio.Job
	if *jobFile != "" {
		f, err := os.Open(*jobFile)
		if err != nil {
			fatal(err)
		}
		jobs, err = fio.Parse(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		pattern, err := workload.ParsePattern(*rw)
		if err != nil {
			fatal(err)
		}
		blockSize, err := fio.ParseSize(*bs)
		if err != nil {
			fatal(err)
		}
		spec := essdsim.Workload{
			Pattern:    pattern,
			BlockSize:  blockSize,
			QueueDepth: *iodepth,
			WriteRatio: float64(*mixPct) / 100,
			Seed:       *seed,
		}
		if *size != "" {
			spec.TotalBytes, err = fio.ParseSize(*size)
			if err != nil {
				fatal(err)
			}
		} else {
			spec.Duration, err = fio.ParseDuration(*runtime)
			if err != nil {
				fatal(err)
			}
			spec.Warmup, err = fio.ParseDuration(*warmup)
			if err != nil {
				fatal(err)
			}
		}
		jobs = []fio.Job{{Name: "cmdline", Spec: spec}}
	}

	for _, job := range jobs {
		switch *precond {
		case "auto":
			essdsim.Precondition(dev, job.Spec.Pattern.IsWrite())
		case "full":
			essdsim.Precondition(dev, false)
		case "half":
			essdsim.Precondition(dev, true)
		case "none":
		default:
			fatal(fmt.Errorf("unknown -precondition %q", *precond))
		}
		fmt.Printf("=== job %s ===\n", job.Name)
		res := essdsim.Run(dev, job.Spec)
		essdsim.FormatWorkloadResult(os.Stdout, res)
	}
}

// runOpenLoop issues requests on an arrival schedule instead of a closed
// loop, exposing the queueing that Implication #4 is about.
func runOpenLoop(dev essdsim.Device, rw, bs string, rate float64,
	arrival string, ops, seed uint64, precond string) {
	pattern, err := workload.ParsePattern(rw)
	if err != nil {
		fatal(err)
	}
	blockSize, err := fio.ParseSize(bs)
	if err != nil {
		fatal(err)
	}
	var arr workload.Arrival
	switch arrival {
	case "uniform":
		arr = workload.Uniform
	case "poisson":
		arr = workload.Poisson
	case "bursty":
		arr = workload.Bursty
	default:
		fatal(fmt.Errorf("unknown -arrival %q", arrival))
	}
	if precond == "auto" || precond == "full" {
		essdsim.Precondition(dev, pattern.IsWrite() && precond == "auto")
	}
	res := workload.RunOpen(dev, workload.OpenSpec{
		Pattern:    pattern,
		BlockSize:  blockSize,
		RatePerSec: rate,
		Arrival:    arr,
		Count:      ops,
		Seed:       seed,
	})
	s := res.Lat.Summarize()
	fmt.Printf("%s: open-loop %s bs=%s rate=%.0f/s arrivals=%s\n",
		res.Device, pattern, bs, rate, arr)
	fmt.Printf("  ops=%d elapsed=%v peak-outstanding=%d\n",
		res.Ops, res.Elapsed, res.MaxOutstanding)
	fmt.Printf("  lat avg=%v p50=%v p99=%v p99.9=%v max=%v\n",
		s.Mean, s.P50, s.P99, s.P999, s.Max)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "essdbench:", err)
	os.Exit(1)
}
