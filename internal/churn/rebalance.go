package churn

import (
	"fmt"
	"sort"
	"strings"
)

// TenantView is one live volume as a rebalancing decision sees it: the
// nominal offered load, never measured latencies — the control plane
// works from the provider-visible numbers, exactly like placement.
type TenantView struct {
	Name       string
	Backend    int
	OfferedBps float64
}

// View is the nominal fleet state one epoch's rebalancing decision is
// made from.
type View struct {
	Backends   int
	BackendBps float64   // per-backend offered budget
	Load       []float64 // nominal offered bytes/s per backend
	Tenants    []TenantView
	Budget     int // moves the control plane will apply this epoch
}

// Move relocates Tenants[Tenant] to backend To. Each applied move costs
// one volume copy (Spec.moveBytes).
type Move struct {
	Tenant int
	To     int
}

// Rebalancer plans migrations between epochs. Plan must be a pure
// function of the view (no randomness, no retained state) so churn
// timelines stay deterministic; moves beyond View.Budget are dropped.
type Rebalancer interface {
	Name() string
	Plan(v View) []Move
}

// NeverMove is the do-nothing baseline: volumes stay where placement
// put them, whatever the load skew. Migration cost zero, SLO exposure
// maximal.
type NeverMove struct{}

// Name implements Rebalancer.
func (NeverMove) Name() string { return "never" }

// Plan implements Rebalancer.
func (NeverMove) Plan(View) []Move { return nil }

// Threshold migrates eagerly when a backend's nominal utilization
// exceeds HighUtil (default 1.0): largest tenants first off the hottest
// backend onto the least-loaded one, until every backend is under the
// threshold or the epoch's budget is spent.
type Threshold struct {
	// HighUtil is the nominal utilization (offered / BackendBps) above
	// which a backend is drained; 0 means 1.0.
	HighUtil float64
}

// Name implements Rebalancer.
func (t Threshold) Name() string { return "threshold" }

// Plan implements Rebalancer.
func (t Threshold) Plan(v View) []Move { return drainPlan(v, t.HighUtil, v.Budget) }

// Drain is the lazy variant of Threshold: the same overload trigger,
// but at most one migration per epoch — a background drain that trades
// longer overload exposure for minimal migration cost.
type Drain struct {
	// HighUtil is the nominal utilization above which a backend is
	// drained; 0 means 1.0.
	HighUtil float64
}

// Name implements Rebalancer.
func (d Drain) Name() string { return "drain" }

// Plan implements Rebalancer.
func (d Drain) Plan(v View) []Move { return drainPlan(v, d.HighUtil, 1) }

// drainPlan moves the largest tenants off overloaded backends onto the
// least-loaded ones, at most maxMoves this epoch. Ties break toward the
// lower backend/tenant index so plans are deterministic.
func drainPlan(v View, highUtil float64, maxMoves int) []Move {
	if highUtil <= 0 {
		highUtil = 1
	}
	load := append([]float64(nil), v.Load...)
	var moves []Move
	for len(moves) < maxMoves {
		hot := -1
		for b := 0; b < v.Backends; b++ {
			if load[b] > highUtil*v.BackendBps && (hot < 0 || load[b] > load[hot]) {
				hot = b
			}
		}
		if hot < 0 {
			return moves
		}
		// Largest tenant on the hot backend; stable order for ties.
		cand := -1
		for i, t := range v.Tenants {
			if t.Backend != hot {
				continue
			}
			if moved(moves, i) {
				continue
			}
			if cand < 0 || t.OfferedBps > v.Tenants[cand].OfferedBps {
				cand = i
			}
		}
		if cand < 0 {
			return moves
		}
		cold := 0
		for b := 1; b < v.Backends; b++ {
			if load[b] < load[cold] {
				cold = b
			}
		}
		if cold == hot {
			return moves
		}
		moves = append(moves, Move{Tenant: cand, To: cold})
		load[hot] -= v.Tenants[cand].OfferedBps
		load[cold] += v.Tenants[cand].OfferedBps
	}
	return moves
}

func moved(moves []Move, tenant int) bool {
	for _, m := range moves {
		if m.Tenant == tenant {
			return true
		}
	}
	return false
}

// Rebalancers returns the built-in policies in comparison order.
func Rebalancers() []Rebalancer {
	return []Rebalancer{NeverMove{}, Threshold{}, Drain{}}
}

// RebalancerNames lists the valid RebalancerByName inputs.
func RebalancerNames() []string {
	names := make([]string, 0, 3)
	for _, r := range Rebalancers() {
		names = append(names, r.Name())
	}
	sort.Strings(names)
	return names
}

// RebalancerByName maps a flag value to its policy, with a descriptive
// error for unknown names.
func RebalancerByName(name string) (Rebalancer, error) {
	for _, r := range Rebalancers() {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("churn: unknown rebalancer %q (valid: %s)",
		name, strings.Join(RebalancerNames(), ", "))
}
