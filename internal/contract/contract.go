// Package contract turns the paper's unwritten contract (§III) into
// machine-checkable rules. Each of the four observations becomes a check
// that runs the corresponding experiment on an ESSD and the local-SSD
// baseline and verdicts the claim with quantitative evidence. This is the
// "contract checker" a cloud storage user would run against a new volume
// type before porting local-SSD-tuned software onto it.
package contract

import (
	"encoding/json"
	"fmt"
	"io"

	"essdsim/internal/harness"
	"essdsim/internal/workload"
)

// Check is the verdict on one observation.
type Check struct {
	ID       string   `json:"id"`
	Title    string   `json:"title"`
	Passed   bool     `json:"passed"`
	Evidence []string `json:"evidence"`
}

// Report is a full contract evaluation of one ESSD against a local SSD
// baseline.
type Report struct {
	ESSD   string  `json:"essd"`
	SSD    string  `json:"ssd"`
	Checks []Check `json:"checks"`
}

// Passed reports whether every check passed.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Passed {
			return false
		}
	}
	return true
}

// Thresholds parameterize the contract verdicts. Zero values take the
// defaults derived from the paper's findings.
type Thresholds struct {
	// O1: minimum ESSD/SSD latency gap at small/low-QD I/O for the
	// "tens to a hundred times" clause (default 10×), and the minimum
	// factor by which scaling I/O must shrink the gap (default 2×).
	MinSmallGap  float64
	MinGapShrink float64
	// O2: latest acceptable SSD knee and earliest acceptable ESSD knee,
	// as capacity multiples (defaults 1.4× and 1.8×).
	MaxSSDKnee  float64
	MinESSDKnee float64
	// O3: minimum ESSD rand/seq gain (default 1.15×) and the band around
	// 1.0 required of the SSD (default ±0.15).
	MinESSDGain float64
	SSDGainBand float64
	// O4: maximum ESSD mixed-throughput spread (default 0.10) and minimum
	// SSD spread (default 0.25).
	MaxESSDSpread float64
	MinSSDSpread  float64
}

func (t Thresholds) withDefaults() Thresholds {
	def := func(v *float64, d float64) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&t.MinSmallGap, 10)
	def(&t.MinGapShrink, 2)
	def(&t.MaxSSDKnee, 1.4)
	def(&t.MinESSDKnee, 1.8)
	def(&t.MinESSDGain, 1.15)
	def(&t.SSDGainBand, 0.15)
	def(&t.MaxESSDSpread, 0.10)
	def(&t.MinSSDSpread, 0.25)
	return t
}

// CheckObservation1 verdicts the latency-gap clause: small/low-QD I/O gaps
// are tens of times, the gap shrinks as I/O scales up, and random reads
// show the smallest gap.
func CheckObservation1(essd, ssd *harness.LatencyGrid, th Thresholds) Check {
	th = th.withDefaults()
	c := Check{ID: "O1", Title: "Latency gap: tens-to-hundred× when I/Os are not scaled up"}
	gap := func(p workload.Pattern, bs int64, qd int) float64 {
		e, s := essd.Cell(p, bs, qd), ssd.Cell(p, bs, qd)
		if e == nil || s == nil || s.Avg <= 0 {
			return -1
		}
		return float64(e.Avg) / float64(s.Avg)
	}
	smallBS, bigBS := int64(4<<10), int64(256<<10)
	lowQD, highQD := 1, 16
	pass := true
	var worstShrink float64 = 1e18
	var minSmall float64 = 1e18
	for _, p := range []workload.Pattern{workload.RandWrite, workload.SeqWrite, workload.SeqRead} {
		small := gap(p, smallBS, lowQD)
		big := gap(p, bigBS, highQD)
		if small < 0 || big <= 0 {
			continue
		}
		shrink := small / big
		if small < minSmall {
			minSmall = small
		}
		if shrink < worstShrink {
			worstShrink = shrink
		}
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"%s: gap %.1fx at (4K,QD1) -> %.1fx at (256K,QD16), shrink %.1fx",
			p, small, big, shrink))
	}
	if minSmall < th.MinSmallGap {
		pass = false
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: small-I/O gap %.1fx below the %.0fx clause", minSmall, th.MinSmallGap))
	}
	if worstShrink < th.MinGapShrink {
		pass = false
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: scaling I/O shrank the gap only %.1fx (< %.1fx)", worstShrink, th.MinGapShrink))
	}
	// Random reads: the smallest gap of the four patterns.
	rrGap := gap(workload.RandRead, smallBS, lowQD)
	others := []float64{
		gap(workload.RandWrite, smallBS, lowQD),
		gap(workload.SeqWrite, smallBS, lowQD),
		gap(workload.SeqRead, smallBS, lowQD),
	}
	for _, o := range others {
		if rrGap > o {
			pass = false
			c.Evidence = append(c.Evidence, fmt.Sprintf(
				"FAIL: random-read gap %.1fx not the smallest (vs %.1fx)", rrGap, o))
			break
		}
	}
	c.Evidence = append(c.Evidence, fmt.Sprintf("random-read gap %.1fx is the smallest", rrGap))
	c.Passed = pass
	return c
}

// CheckObservation2 verdicts the GC clause: the ESSD's throughput cliff
// under sustained random writes appears far later than the local SSD's, or
// not at all.
func CheckObservation2(essd, ssd *harness.SustainedResult, th Thresholds) Check {
	th = th.withDefaults()
	c := Check{ID: "O2", Title: "GC impact appears much later or disappears"}
	c.Evidence = append(c.Evidence, fmt.Sprintf(
		"%s: knee at %.2fx capacity, tail %.0f MB/s, WA %.1f",
		ssd.Device, ssd.KneeCapFrac, ssd.TailRate/1e6, ssd.WriteAmp))
	if essd.KneeCapFrac < 0 {
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"%s: no knee within %.1fx capacity (GC impact disappears)",
			essd.Device, float64(essd.TotalWritten)/float64(essd.Capacity)))
	} else {
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"%s: knee at %.2fx capacity (throttled: %v)",
			essd.Device, essd.KneeCapFrac, essd.Throttled))
	}
	ssdOK := ssd.KneeCapFrac >= 0 && ssd.KneeCapFrac <= th.MaxSSDKnee
	essdOK := essd.KneeCapFrac < 0 || essd.KneeCapFrac >= th.MinESSDKnee
	if !ssdOK {
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: SSD baseline knee %.2fx outside (0, %.1fx]", ssd.KneeCapFrac, th.MaxSSDKnee))
	}
	if !essdOK {
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: ESSD knee %.2fx earlier than %.1fx", essd.KneeCapFrac, th.MinESSDKnee))
	}
	c.Passed = ssdOK && essdOK
	return c
}

// CheckObservation3 verdicts the access-pattern clause: random writes beat
// sequential writes on the ESSD while the SSD shows no significant
// difference.
func CheckObservation3(essd, ssd *harness.RandSeqResult, th Thresholds) Check {
	th = th.withDefaults()
	c := Check{ID: "O3", Title: "Random-write throughput beats sequential"}
	eGain, eAt := essd.MaxGain()
	c.Evidence = append(c.Evidence, fmt.Sprintf(
		"%s: max gain %.2fx at bs=%dK QD%d",
		essd.Device, eGain, eAt.BlockSize>>10, eAt.QueueDepth))
	sGain, _ := ssd.MaxGain()
	c.Evidence = append(c.Evidence, fmt.Sprintf("%s: max gain %.2fx", ssd.Device, sGain))
	pass := true
	if eGain < th.MinESSDGain {
		pass = false
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: ESSD gain %.2fx below %.2fx", eGain, th.MinESSDGain))
	}
	// SSD gains should hover around 1.0 at every cell.
	for _, cell := range ssd.Cells {
		if g := cell.Gain(); g < 1-th.SSDGainBand || g > 1+th.SSDGainBand {
			pass = false
			c.Evidence = append(c.Evidence, fmt.Sprintf(
				"FAIL: SSD gain %.2fx at bs=%dK QD%d outside 1±%.2f",
				g, cell.BlockSize>>10, cell.QueueDepth, th.SSDGainBand))
			break
		}
	}
	c.Passed = pass
	return c
}

// CheckObservation4 verdicts the throughput-budget clause: ESSD maximum
// bandwidth is deterministic across read/write mixes; the SSD's is not.
func CheckObservation4(essd, ssd *harness.MixedResult, th Thresholds) Check {
	th = th.withDefaults()
	c := Check{ID: "O4", Title: "Maximum bandwidth deterministic across access patterns"}
	eMin, eMax := essd.MinMax()
	sMin, sMax := ssd.MinMax()
	c.Evidence = append(c.Evidence,
		fmt.Sprintf("%s: total %.2f-%.2f GB/s (spread %.1f%%)",
			essd.Device, eMin/1e9, eMax/1e9, essd.Spread()*100),
		fmt.Sprintf("%s: total %.2f-%.2f GB/s (spread %.1f%%)",
			ssd.Device, sMin/1e9, sMax/1e9, ssd.Spread()*100))
	pass := true
	if essd.Spread() > th.MaxESSDSpread {
		pass = false
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: ESSD spread %.1f%% above %.0f%%", essd.Spread()*100, th.MaxESSDSpread*100))
	}
	if ssd.Spread() < th.MinSSDSpread {
		pass = false
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: SSD spread %.1f%% below %.0f%% (baseline should be pattern-sensitive)",
			ssd.Spread()*100, th.MinSSDSpread*100))
	}
	c.Passed = pass
	return c
}

// CheckObservation4IOPS verdicts the footnote of Observation #4: byte
// throughput is deterministic but the achieved IOPS varies strongly with
// I/O size (so IOPS is not the contractually flat quantity).
func CheckObservation4IOPS(essd *harness.IOPSResult, th Thresholds) Check {
	th = th.withDefaults()
	c := Check{ID: "O4-IOPS", Title: "Guaranteed IOPS is non-deterministic and tied to I/O size"}
	for _, p := range essd.Points {
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"bs=%dK: %.0f IOPS (%.2f GB/s)", p.BlockSize>>10, p.IOPS, p.Bytes/1e9))
	}
	spread := essd.IOPSSpread()
	c.Evidence = append(c.Evidence, fmt.Sprintf("IOPS spread across sizes: %.0f%%", spread*100))
	// IOPS must vary far more across sizes than the byte throughput does.
	c.Passed = spread > 2*th.MaxESSDSpread
	if !c.Passed {
		c.Evidence = append(c.Evidence, fmt.Sprintf(
			"FAIL: IOPS spread %.1f%% too flat; expected size-coupled IOPS", spread*100))
	}
	return c
}

// EvalOptions configure a full contract evaluation.
type EvalOptions struct {
	Harness    harness.Options
	Thresholds Thresholds
	// CapMultiple is the sustained-write volume in capacity multiples
	// (default 3, the paper's setting).
	CapMultiple float64
	// Quick shrinks the grids for fast runs (CI, benchmarks).
	Quick bool
}

// Evaluate runs all four observation checks of the unwritten contract for
// one ESSD factory against the local-SSD baseline factory.
func Evaluate(essdFactory, ssdFactory harness.Factory, opts EvalOptions) *Report {
	if opts.CapMultiple <= 0 {
		opts.CapMultiple = 3
	}
	sizes, qds := harness.Fig2Sizes, harness.Fig2QDs
	f4sizes, f4qds := harness.Fig4Sizes, harness.Fig4QDs
	ratios := harness.Fig5Ratios
	if opts.Quick {
		sizes, qds = []int64{4 << 10, 256 << 10}, []int{1, 16}
		f4sizes, f4qds = []int64{16 << 10, 256 << 10}, []int{1, 32}
		ratios = []int{0, 30, 70, 100}
	}
	eGrid := harness.RunLatencyGridWith(essdFactory, harness.Fig2Patterns, sizes, qds, opts.Harness)
	sGrid := harness.RunLatencyGridWith(ssdFactory, harness.Fig2Patterns, sizes, qds, opts.Harness)
	eSus := harness.RunSustainedWrite(essdFactory, opts.CapMultiple, opts.Harness)
	sSus := harness.RunSustainedWrite(ssdFactory, opts.CapMultiple, opts.Harness)
	eRS := harness.RunRandSeqSweepWith(essdFactory, f4sizes, f4qds, opts.Harness)
	sRS := harness.RunRandSeqSweepWith(ssdFactory, f4sizes, f4qds, opts.Harness)
	eMix := harness.RunMixedSweepWith(essdFactory, ratios, opts.Harness)
	sMix := harness.RunMixedSweepWith(ssdFactory, ratios, opts.Harness)
	iopsSizes := []int64{4 << 10, 64 << 10, 256 << 10}
	eIOPS := harness.RunIOPSSweep(essdFactory, iopsSizes, opts.Harness)
	return &Report{
		ESSD: eGrid.Device,
		SSD:  sGrid.Device,
		Checks: []Check{
			CheckObservation1(eGrid, sGrid, opts.Thresholds),
			CheckObservation2(eSus, sSus, opts.Thresholds),
			CheckObservation3(eRS, sRS, opts.Thresholds),
			CheckObservation4(eMix, sMix, opts.Thresholds),
			CheckObservation4IOPS(eIOPS, opts.Thresholds),
		},
	}
}

// Format writes a human-readable contract report.
func Format(w io.Writer, r *Report) {
	fmt.Fprintf(w, "The Unwritten Contract of Cloud-based ESSDs — checker report\n")
	fmt.Fprintf(w, "ESSD: %s\nBaseline: %s\n", r.ESSD, r.SSD)
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Passed {
			status = "FAIL"
		}
		fmt.Fprintf(w, "\n[%s] %s — %s\n", status, c.ID, c.Title)
		for _, e := range c.Evidence {
			fmt.Fprintf(w, "    %s\n", e)
		}
	}
	fmt.Fprintf(w, "\nOverall: ")
	if r.Passed() {
		fmt.Fprintln(w, "the device honours the unwritten contract of cloud-based ESSDs.")
	} else {
		fmt.Fprintln(w, "one or more contract clauses FAILED; see evidence above.")
	}
}

// MarshalJSON renders the report as indented JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
