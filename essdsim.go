// Package essdsim is the public API of the elastic-SSD simulation library,
// a reproduction of "The Unwritten Contract of Cloud-based Elastic
// Solid-State Drives" (Wang & Yang, DAC 2025).
//
// The library provides:
//
//   - calibrated simulated devices: two cloud ESSDs (AWS io2 class and
//     Alibaba PL3 class) and a local NVMe SSD (Samsung 970 Pro class),
//     all behind one block-device interface;
//   - a fio-style workload engine with latency histograms and throughput
//     timelines measured in deterministic virtual time;
//   - experiment harnesses that regenerate every table and figure of the
//     paper;
//   - a contract checker that verdicts the paper's four observations on
//     any device and prints the five implications;
//   - declarative experiment grids (Sweep) executed on a parallel worker
//     pool with deterministic per-cell seeding, plus a sweep-level result
//     cache (SweepCache) that memoizes cells across sweeps and persists to
//     JSON;
//   - the burst-credit scenario suite (RunBurstScenario) and a latency-SLO
//     search (SearchSLO) that binary-searches offered rate for the highest
//     rate meeting a p99/p99.9 target, reporting both the pre-exhaustion
//     and post-cliff answers of burstable tiers;
//   - shared-backend multi-tenancy: many volumes attached to one Backend
//     (NewBackend/AttachVolume) contending on its cluster, fabric, and
//     cleaner, a tenant-mix driver (RunTenantMix) running their
//     generators inside one engine, and the noisy-neighbor scenario suite
//     (RunNeighborScenario) measuring victim tail inflation and
//     shared-debt throttle onset;
//   - fleet-scale tenant packing (RunFleet): a catalog of tenant demands
//     (synthetic or fitted from real traces) placed onto many shared
//     backends by pluggable placement policies — first-fit, spread,
//     best-fit, interference-aware — with per-policy SLO-violation,
//     utilization, and worst-victim-inflation comparisons;
//   - pluggable per-tenant QoS isolation (Isolation, docs/isolation.md):
//     every contention point of the shared backend — cluster streams,
//     pooled cleaner debt, fabric links — schedules per-flow under fifo
//     (the byte-identical default), weighted fair queueing, or
//     work-conserving reservations, with per-volume Weight/ReservedRate,
//     the policy-comparison suite (RunIsolationComparison), and the
//     isolation × placement fleet study (RunFleetIsolationStudy); and
//   - CSV/JSON exports of every suite for plotting (docs/formats.md).
//
// Quick start:
//
//	eng := essdsim.NewEngine()
//	dev := essdsim.NewESSD1(eng, 42)
//	essdsim.Precondition(dev, true)
//	res := essdsim.Run(dev, essdsim.Workload{
//	    Pattern:    essdsim.RandWrite,
//	    BlockSize:  4 << 10,
//	    QueueDepth: 1,
//	    Duration:   500 * essdsim.Millisecond,
//	})
//	fmt.Println(res.Lat.Summarize())
package essdsim

import (
	"context"
	"fmt"
	"io"

	"essdsim/internal/blockdev"
	"essdsim/internal/churn"
	"essdsim/internal/contract"
	"essdsim/internal/essd"
	"essdsim/internal/expgrid"
	"essdsim/internal/fio"
	"essdsim/internal/fleet"
	"essdsim/internal/harness"
	"essdsim/internal/obs"
	"essdsim/internal/profiles"
	"essdsim/internal/qos"
	"essdsim/internal/scenario"
	"essdsim/internal/sim"
	"essdsim/internal/slo"
	"essdsim/internal/ssd"
	"essdsim/internal/stats"
	"essdsim/internal/trace"
	"essdsim/internal/workload"
	"essdsim/kv"
)

// Core simulation types.
type (
	// Engine is the discrete-event simulation engine devices run on.
	Engine = sim.Engine
	// Time is a point in simulated time (nanoseconds).
	Time = sim.Time
	// Duration is a span of simulated time (nanoseconds).
	Duration = sim.Duration
	// Device is a simulated block storage device.
	Device = blockdev.Device
	// Request is one asynchronous block I/O.
	Request = blockdev.Request
	// Op is a block operation type.
	Op = blockdev.Op
)

// Duration units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Block operation types.
const (
	OpRead  = blockdev.Read
	OpWrite = blockdev.Write
	OpTrim  = blockdev.Trim
	OpFlush = blockdev.Flush
)

// Workload types.
type (
	// Workload describes one fio-style run (pattern, bs, qd, bounds).
	Workload = workload.Spec
	// WorkloadResult holds the measurements of one run.
	WorkloadResult = workload.Result
	// Pattern is a fio-style access pattern.
	Pattern = workload.Pattern
	// Histogram is an HDR-style latency histogram.
	Histogram = stats.Histogram
	// LatencySummary is a histogram snapshot (avg, p50, p99, p99.9, max).
	LatencySummary = stats.Summary
)

// Access patterns.
const (
	RandWrite = workload.RandWrite
	SeqWrite  = workload.SeqWrite
	RandRead  = workload.RandRead
	SeqRead   = workload.SeqRead
	Mixed     = workload.Mixed
)

// NewEngine returns a fresh simulation engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// NewESSD1 builds the calibrated ESSD-1 (Amazon AWS io2 class) volume.
func NewESSD1(eng *Engine, seed uint64) *essd.ESSD {
	return profiles.NewESSD1(eng, sim.NewRNG(seed, seed^0x1))
}

// NewESSD2 builds the calibrated ESSD-2 (Alibaba Cloud PL3 class) volume.
func NewESSD2(eng *Engine, seed uint64) *essd.ESSD {
	return profiles.NewESSD2(eng, sim.NewRNG(seed, seed^0x2))
}

// NewLocalSSD builds the calibrated local SSD (Samsung 970 Pro class).
func NewLocalSSD(eng *Engine, seed uint64) *ssd.SSD {
	return profiles.NewSSD(eng, sim.NewRNG(seed, seed^0x3))
}

// NewDevice builds a device by profile name: "essd1", "essd2", "ssd",
// "gp3", or "pl1".
func NewDevice(name string, eng *Engine, seed uint64) (Device, error) {
	return profiles.ByName(name, eng, sim.NewRNG(seed, seed^0x4))
}

// Shared-backend multi-tenancy types: the storage side of the stack
// (cluster + fabric + background cleaner) is a Backend that any number of
// volumes attach to, as in the paper's disaggregated Fig 1. Attached
// volumes contend on the backend's resources and the backend attributes
// debt, cluster operations, and fabric bytes per volume.
type (
	// Backend is a shared storage backend (one cluster + one fabric).
	Backend = essd.Backend
	// BackendConfig parameterizes a shared backend.
	BackendConfig = essd.BackendConfig
	// VolumeConfig parameterizes one volume attached to a backend.
	VolumeConfig = essd.VolumeConfig
	// Volume is an ESSD volume attached to a (possibly shared) backend.
	Volume = essd.ESSD
	// BackendVolumeStats is one volume's attributed use of its backend.
	BackendVolumeStats = essd.VolumeStats
)

// NewBackend builds a shared storage backend on the engine. Attach volumes
// with AttachVolume (or Backend.Attach).
func NewBackend(eng *Engine, cfg BackendConfig, seed uint64) *Backend {
	return essd.NewBackend(eng, cfg, sim.NewRNG(seed, seed^0x6))
}

// AttachVolume attaches a volume to the shared backend with a fresh RNG
// built from the seed and decorrelated by the volume name. Because each
// call constructs its own RNG (nothing shared between calls), attach
// order does not perturb other volumes' draws — unlike Backend.Attach
// calls sharing one parent RNG, whose order is part of the deterministic
// construction sequence.
func AttachVolume(b *Backend, cfg VolumeConfig, seed uint64) *Volume {
	return b.Attach(cfg, sim.NewRNG(seed, seed^0x7))
}

// NeighborBackendConfig returns the shared backend used by the
// noisy-neighbor studies: ESSD-1-class fabric and cluster with a modest
// background cleaner.
func NeighborBackendConfig() BackendConfig { return profiles.NeighborBackendConfig() }

// NeighborVolumeConfig returns the per-volume half of a tenant on the
// neighbor backend: gp3-class budgets with a tight spare-capacity margin.
func NeighborVolumeConfig(name string) VolumeConfig { return profiles.NeighborVolumeConfig(name) }

// ProfileNames lists the valid NewDevice profile names.
func ProfileNames() []string { return profiles.Names() }

// Run executes a workload on a device, driving its engine until every
// outstanding I/O drains, and returns the measurements.
func Run(dev Device, spec Workload) *WorkloadResult { return workload.Run(dev, spec) }

// Open-loop workload types.
type (
	// OpenWorkload describes an arrival-driven (open-loop) run: requests
	// issue on a schedule regardless of completions.
	OpenWorkload = workload.OpenSpec
	// OpenWorkloadResult holds open-loop measurements, including the
	// completion timelines used for latency-cliff analysis.
	OpenWorkloadResult = workload.OpenResult
	// Arrival is an open-loop arrival process.
	Arrival = workload.Arrival
)

// Arrival processes.
const (
	ArrivalUniform = workload.Uniform
	ArrivalPoisson = workload.Poisson
	ArrivalBursty  = workload.Bursty
)

// RunOpen executes an open-loop workload on a device, driving its engine
// until every request completes.
func RunOpen(dev Device, spec OpenWorkload) *OpenWorkloadResult {
	return workload.RunOpen(dev, spec)
}

// ParseArrival converts an arrival-shape name ("uniform", "poisson",
// "bursty") into an Arrival.
func ParseArrival(s string) (Arrival, error) { return workload.ParseArrival(s) }

// Tenant-mix types: several generators driving distinct volumes inside one
// engine — the multi-tenant regime where volumes sharing a Backend
// interfere.
type (
	// Tenant pairs one volume with its generator (open- or closed-loop).
	Tenant = workload.Tenant
	// TenantResult holds one tenant's measurements from RunTenantMix.
	TenantResult = workload.TenantResult
)

// RunTenantMix drives several tenants' generators concurrently inside one
// engine: all generators start, then a single engine run drains them, so
// the tenants' I/O interleaves the way concurrent guests on a shared
// backend would. Results are returned in tenant order. It panics on
// invalid tenants (no device, device on another engine, both or neither
// spec set) — the same contract as Run and RunOpen.
func RunTenantMix(eng *Engine, tenants []Tenant) []*TenantResult {
	return workload.RunTenants(eng, tenants)
}

// Precondition prepares a device for measurement: write experiments get a
// GC-free half-filled device; read experiments a fully written one.
func Precondition(dev Device, forWrites bool) { harness.Precondition(dev, forWrites) }

// ParseFioJobs parses a fio job file subset into named workloads.
func ParseFioJobs(r io.Reader) ([]fio.Job, error) { return fio.Parse(r) }

// Trace types.
type (
	// TraceRecord is one traced I/O.
	TraceRecord = trace.Record
	// TraceReplayResult summarizes a trace replay.
	TraceReplayResult = trace.ReplayResult
)

// ReadTrace parses a text trace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return trace.Read(r) }

// ReadTraceFormat parses a trace in the named format: "text" (native) or
// "msr" (MSR-Cambridge CSV) — the single dispatch behind every CLI trace
// flag.
func ReadTraceFormat(r io.Reader, format string) ([]TraceRecord, error) {
	return trace.ReadFormat(r, format)
}

// ParseMSRTrace converts MSR-Cambridge block-trace CSV rows
// (Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime) into
// replayable records, rebased so the earliest request issues at time zero.
// Pass the result through FitTrace before replaying onto a scaled
// simulated device.
func ParseMSRTrace(r io.Reader) ([]TraceRecord, error) { return trace.ParseMSR(r) }

// FitTrace maps a foreign trace onto a device geometry: offsets aligned
// and wrapped modulo capacity, sizes rounded to whole blocks and clamped.
func FitTrace(recs []TraceRecord, capacity, blockSize int64) []TraceRecord {
	return trace.Fit(recs, capacity, blockSize)
}

// WriteTrace serializes a text trace.
func WriteTrace(w io.Writer, recs []TraceRecord) error { return trace.Write(w, recs) }

// ReplayTrace replays records against a device open-loop.
func ReplayTrace(dev Device, recs []TraceRecord) *TraceReplayResult {
	return trace.Replay(dev, recs)
}

// Experiment harness types.
type (
	// ExperimentOptions tune harness durations and seeding.
	ExperimentOptions = harness.Options
	// LatencyGrid is a Figure 2 measurement.
	LatencyGrid = harness.LatencyGrid
	// SustainedResult is a Figure 3 measurement.
	SustainedResult = harness.SustainedResult
	// RandSeqResult is a Figure 4 measurement.
	RandSeqResult = harness.RandSeqResult
	// MixedResult is a Figure 5 measurement.
	MixedResult = harness.MixedResult
	// DeviceFactory constructs a fresh device for one experiment cell.
	DeviceFactory = harness.Factory
)

// Experiment-grid types: declarative parameter sweeps executed on a
// parallel worker pool with deterministic per-cell seeding and output
// order. See internal/expgrid's package documentation for the
// cell-isolation and seed-derivation model.
type (
	// Sweep declares an experiment grid: the cross product of device
	// factories, patterns, block sizes, queue depths, and write ratios.
	Sweep = expgrid.Sweep
	// SweepCell is one point of a grid with its derived seed.
	SweepCell = expgrid.Cell
	// SweepCellResult pairs a cell with its workload measurements.
	SweepCellResult = expgrid.CellResult
	// SweepRunner executes a Sweep's cells on a pool of workers.
	SweepRunner = expgrid.Runner
	// SweepProgress reports one completed cell to a progress callback.
	SweepProgress = expgrid.Progress
	// NamedFactory is one value of a sweep's device axis.
	NamedFactory = expgrid.NamedFactory
	// SweepPrecond selects how a cell's device is prepared before
	// measurement (see the Precond* constants).
	SweepPrecond = expgrid.Precond
	// SweepKind selects the per-cell workload family of a Sweep (see the
	// SweepClosed/SweepOpen/SweepTraceReplay constants).
	SweepKind = expgrid.Kind
)

// Sweep kinds: closed-loop fio-style cells (the default), open-loop
// arrival-driven cells with arrival-shape and offered-rate axes,
// trace-replay cells (one replay of Sweep.Trace per device), and
// tenant-mix cells (several generators on distinct volumes inside one
// engine, with an aggressor-count axis).
const (
	SweepClosed      = expgrid.Closed
	SweepOpen        = expgrid.Open
	SweepTraceReplay = expgrid.TraceReplay
	SweepTenantMix   = expgrid.TenantMix
)

// Device-preconditioning modes for Sweep.Precondition.
const (
	PrecondAuto   = expgrid.PrecondAuto
	PrecondWrites = expgrid.PrecondWrites
	PrecondFull   = expgrid.PrecondFull
	PrecondNone   = expgrid.PrecondNone
)

// SweepDevices builds a single-device axis for a Sweep.
func SweepDevices(name string, f DeviceFactory) []NamedFactory {
	return expgrid.Devices(name, f)
}

// ProfileDevices builds a sweep device axis from profile names (see
// ProfileNames). A cell whose profile name is unknown fails with a
// descriptive error when it runs.
func ProfileDevices(names ...string) []NamedFactory {
	devices := make([]NamedFactory, 0, len(names))
	for _, name := range names {
		name := name
		devices = append(devices, NamedFactory{
			Name: name,
			New: func(seed uint64) Device {
				dev, err := NewDevice(name, NewEngine(), seed)
				if err != nil {
					panic(err) // expgrid recovers this into CellResult.Err
				}
				return dev
			},
		})
	}
	return devices
}

// RunSweep executes every cell of the sweep on workers goroutines
// (GOMAXPROCS when workers <= 0) and returns results in deterministic
// enumeration order. Cancel ctx to stop early.
func RunSweep(ctx context.Context, sw Sweep, workers int) ([]SweepCellResult, error) {
	return expgrid.Runner{Workers: workers}.Run(ctx, sw)
}

// RunSustainedWrites performs the paper's Figure 3 sustained-write
// experiment (random 128 KiB writes of capMultiple × capacity onto fresh
// devices) for several devices concurrently, returning results in the
// devices' order.
func RunSustainedWrites(devices []NamedFactory, capMultiple float64, opts ExperimentOptions) []*SustainedResult {
	return harness.RunSustainedWrites(devices, capMultiple, opts)
}

// Burst-credit scenario types: the Observation #4 / Implication #4 suite
// sweeping burstable tiers across write ratio × arrival shape × offered
// rate on the expgrid worker pool.
type (
	// BurstSweep declares a burst-credit exhaustion suite.
	BurstSweep = scenario.BurstSweep
	// BurstReport is the suite's full measurement.
	BurstReport = scenario.BurstReport
	// BurstCell is one measured point: credit-exhaustion time, throttle
	// and budget-stall state, and the pre/post-exhaustion latency cliff.
	BurstCell = scenario.BurstCell
)

// RunBurstScenario executes a burst-credit scenario sweep; zero-valued
// BurstSweep fields take defaults (the two calibrated burstable tiers,
// write ratios 0/50/100, uniform and bursty arrivals). Results are
// deterministic for any worker count, and a cache-warm re-run (BurstSweep.Cache)
// is byte-identical to a cold one.
func RunBurstScenario(ctx context.Context, s BurstSweep) (*BurstReport, error) {
	return scenario.RunBurst(ctx, s)
}

// FormatBurstReport writes the scenario report as an aligned table.
func FormatBurstReport(w io.Writer, r *BurstReport) { scenario.FormatBurst(w, r) }

// WriteBurstCSV dumps the scenario report as one CSV row per cell; see
// docs/formats.md for the schema.
func WriteBurstCSV(w io.Writer, r *BurstReport) error { return scenario.WriteBurstCSV(w, r) }

// WriteBurstTimelineCSV dumps every cell's per-interval completion
// timeline as CSV; see docs/formats.md for the schema.
func WriteBurstTimelineCSV(w io.Writer, r *BurstReport) error {
	return scenario.WriteBurstTimelineCSV(w, r)
}

// BurstTierDevices returns the default burstable device axis for a
// BurstSweep or an open-loop Sweep.
func BurstTierDevices() []NamedFactory { return scenario.BurstTierDevices() }

// Noisy-neighbor scenario types: a steady victim tenant vs bursty
// aggressor tenants on one shared Backend, swept over aggressor count ×
// rate × write ratio.
type (
	// NeighborSweep declares a noisy-neighbor suite.
	NeighborSweep = scenario.NeighborSweep
	// NeighborReport is the suite's full measurement.
	NeighborReport = scenario.NeighborReport
	// NeighborCell is one measured point: victim tail latency, its
	// inflation over the solo-victim control, and shared-debt throttle
	// onset.
	NeighborCell = scenario.NeighborCell
)

// RunNeighborScenario executes a noisy-neighbor sweep; zero-valued
// NeighborSweep fields take defaults (victim 64 KiB mixed at 300 req/s vs
// 0/1/2/4 bursty write-heavy aggressors at 800 and 1600 req/s each).
// Results are deterministic for any worker count, and a cache-warm re-run
// (NeighborSweep.Cache) simulates zero new cells.
func RunNeighborScenario(ctx context.Context, s NeighborSweep) (*NeighborReport, error) {
	return scenario.RunNeighbor(ctx, s)
}

// FormatNeighborReport writes the scenario report as an aligned table.
func FormatNeighborReport(w io.Writer, r *NeighborReport) { scenario.FormatNeighbor(w, r) }

// WriteNeighborCSV dumps the scenario report as one CSV row per cell; see
// docs/formats.md for the schema.
func WriteNeighborCSV(w io.Writer, r *NeighborReport) error { return scenario.WriteNeighborCSV(w, r) }

// Per-tenant QoS isolation types: every contention point of the shared
// backend (cluster streams, cleaner debt pool, fabric links) dispatches
// through a pluggable scheduling policy, with per-volume weights and
// reserved rates carried by VolumeConfig. The zero Isolation value is the
// original FIFO stack, bit-for-bit.
type (
	// Isolation selects the backend's QoS scheduling policy and knobs.
	Isolation = qos.Isolation
	// IsolationPolicy names a scheduling discipline: fifo, wfq, or
	// reservation.
	IsolationPolicy = qos.IsolationPolicy
	// IsolationComparison sweeps a neighbor scenario across isolation
	// policies on identical arrival streams.
	IsolationComparison = scenario.IsolationComparison
	// IsolationScenarioReport compares victim tails per policy.
	IsolationScenarioReport = scenario.IsolationReport
	// IsolationScenarioVariant is one policy's neighbor outcome.
	IsolationScenarioVariant = scenario.IsolationVariant
	// FleetIsolationStudySpec crosses a fleet study with isolation
	// configurations.
	FleetIsolationStudySpec = fleet.IsolationStudySpec
	// FleetIsolationStudyReport holds per-variant fleet outcomes.
	FleetIsolationStudyReport = fleet.IsolationStudyReport
)

// Isolation policy names accepted by ParseIsolationPolicy.
const (
	IsolationFIFO        = qos.IsolationFIFO
	IsolationWFQ         = qos.IsolationWFQ
	IsolationReservation = qos.IsolationReservation
)

// ParseIsolationPolicy maps a policy name to its IsolationPolicy,
// rejecting unknown names with a descriptive error.
func ParseIsolationPolicy(s string) (IsolationPolicy, error) {
	return qos.ParseIsolationPolicy(s)
}

// RunIsolationComparison runs the neighbor sweep once per isolation
// policy on identical arrival streams and reports victim-tail inflation
// per policy. Deterministic for any worker count; each policy caches
// separately under NeighborSweep.Cache.
func RunIsolationComparison(ctx context.Context, c IsolationComparison) (*IsolationScenarioReport, error) {
	return scenario.RunIsolationComparison(ctx, c)
}

// FormatIsolationReport writes the per-policy comparison table.
func FormatIsolationReport(w io.Writer, r *IsolationScenarioReport) { scenario.FormatIsolation(w, r) }

// WriteIsolationCSV dumps the comparison as one CSV row per (policy,
// cell); see docs/formats.md for the schema.
func WriteIsolationCSV(w io.Writer, r *IsolationScenarioReport) error {
	return scenario.WriteIsolationCSV(w, r)
}

// RunFleetIsolationStudy runs a fleet study once per isolation
// configuration, measuring how many SLO violations each placement policy
// sheds when the backend scheduler isolates tenants.
func RunFleetIsolationStudy(ctx context.Context, ss FleetIsolationStudySpec) (*FleetIsolationStudyReport, error) {
	return fleet.RunIsolationStudy(ctx, ss)
}

// FormatFleetIsolationStudy writes the isolation × placement trade-off
// matrix.
func FormatFleetIsolationStudy(w io.Writer, r *FleetIsolationStudyReport) {
	fleet.FormatIsolationStudy(w, r)
}

// NewDeviceQoS builds a device by profile name with a backend isolation
// policy and per-volume QoS share applied. With the zero Isolation and no
// weight or reservation it is exactly NewDevice; otherwise the profile
// must be essd-class (a local SSD has no shared backend to schedule).
func NewDeviceQoS(name string, iso Isolation, weight, reservedBps float64, eng *Engine, seed uint64) (Device, error) {
	return profiles.ByNameQoS(name, iso, weight, reservedBps, eng, sim.NewRNG(seed, seed^0x4))
}

// ProfileDevicesQoS builds a sweep device axis like ProfileDevices but
// with an isolation policy and per-volume QoS share applied to every
// profile. Pair with Sweep.Variant so isolated cells cache separately.
func ProfileDevicesQoS(iso Isolation, weight, reservedBps float64, names ...string) []NamedFactory {
	devices := make([]NamedFactory, 0, len(names))
	for _, name := range names {
		name := name
		devices = append(devices, NamedFactory{
			Name: name,
			New: func(seed uint64) Device {
				dev, err := NewDeviceQoS(name, iso, weight, reservedBps, NewEngine(), seed)
				if err != nil {
					panic(err) // expgrid recovers this into CellResult.Err
				}
				return dev
			},
		})
	}
	return devices
}

// Fleet tenant-packing types: a catalog of tenant demands placed onto
// many shared backends by pluggable placement policies, each placement
// materialized as independent Backend simulations on the sweep worker
// pool and compared policy-vs-policy.
type (
	// FleetSpec declares a fleet packing study: demands, templates,
	// budgets, policies, and the SLO targets.
	FleetSpec = fleet.Spec
	// FleetDemand describes one tenant volume to place.
	FleetDemand = fleet.Demand
	// FleetReport is the study outcome: one policy report per compared
	// policy over the identical catalog, plus shared solo controls.
	FleetReport = fleet.Report
	// FleetPolicyReport is one placement policy's complete outcome.
	FleetPolicyReport = fleet.PolicyReport
	// PlacementPolicy assigns tenant demands to backends.
	PlacementPolicy = fleet.PlacementPolicy
	// PlacementConstraints carries the per-backend packing budgets a
	// policy places against.
	PlacementConstraints = fleet.Constraints
	// FleetScreenSpec configures the two-fidelity screen: an analytic
	// candidate budget on top of a FleetSpec, with a cap on how many
	// Pareto-frontier placements are fully simulated.
	FleetScreenSpec = fleet.ScreenSpec
	// FleetScreenReport is the screen outcome: every scored candidate
	// summarized, the Pareto frontier, and the simulated frontier report.
	FleetScreenReport = fleet.ScreenReport
)

// RunFleet executes a fleet tenant-packing study: every policy places the
// identical demand catalog, each placement materializes as independent
// shared-backend simulations (plus one solo control per distinct demand
// shape), and all cells run in parallel on one sweep worker pool. Results
// are deterministic for any worker count; with FleetSpec.Cache a warm
// re-run simulates zero new cells.
func RunFleet(ctx context.Context, s FleetSpec) (*FleetReport, error) {
	return fleet.Run(ctx, s)
}

// DefaultPlacementPolicies returns the built-in policies in fixed order:
// first-fit, spread, best-fit, interference-aware.
func DefaultPlacementPolicies() []PlacementPolicy { return fleet.DefaultPolicies() }

// PlacementPolicyByName returns the built-in policy with the given name
// ("first-fit", "spread", "best-fit", "interference").
func PlacementPolicyByName(name string) (PlacementPolicy, error) {
	return fleet.PolicyByName(name)
}

// SyntheticFleetDemands builds a deterministic tenant catalog: aggressors
// bursty write floods spread evenly through steady mixed victims.
func SyntheticFleetDemands(total, aggressors int) []FleetDemand {
	return fleet.SyntheticDemands(total, aggressors)
}

// FleetDemandFromTrace converts a real trace into a placeable tenant
// demand: records fitted onto the volume geometry, then profiled into an
// open-loop rate, write mix, and request size.
func FleetDemandFromTrace(name string, recs []TraceRecord, capacity, blockSize int64) (FleetDemand, error) {
	return fleet.DemandFromTrace(name, recs, capacity, blockSize)
}

// RunFleetScreen executes the two-fidelity screening study: thousands of
// candidate placements (policy bases at every packing density plus seeded
// perturbations) are scored with the closed-form credit analytics, and
// only the Pareto frontier on (backends used, predicted violation score)
// is materialized as full simulations. Deterministic for a fixed spec.
func RunFleetScreen(ctx context.Context, s FleetScreenSpec) (*FleetScreenReport, error) {
	return fleet.Screen(ctx, s)
}

// FormatFleetScreenReport writes the screen summary, the frontier, and the
// simulated truth for each materialized frontier placement.
func FormatFleetScreenReport(w io.Writer, r *FleetScreenReport) { fleet.FormatScreen(w, r) }

// FormatFleetReport writes the policy-vs-policy comparison tables.
func FormatFleetReport(w io.Writer, r *FleetReport) { fleet.Format(w, r) }

// WriteFleetCSV dumps the per-backend fleet table (one row per policy ×
// materialized backend) as CSV; see docs/formats.md for the schema.
func WriteFleetCSV(w io.Writer, r *FleetReport) error { return fleet.WriteBackendsCSV(w, r) }

// WriteFleetTenantsCSV dumps the per-tenant fleet table (one row per
// policy × tenant) as CSV; see docs/formats.md for the schema.
func WriteFleetTenantsCSV(w io.Writer, r *FleetReport) error { return fleet.WriteTenantsCSV(w, r) }

// Fleet churn control-plane types: volume lifecycle events over a demand
// catalog, online placement, and pluggable rebalancing, measured epoch by
// epoch through the same cell machinery the static fleet studies use.
type (
	// ChurnSpec declares a churn study: an embedded FleetSpec (catalog,
	// templates, budgets, SLOs, epoch length) plus the churn process,
	// placement policy, rebalancer, and migration budget.
	ChurnSpec = churn.Spec
	// ChurnEventKind classifies a lifecycle event.
	ChurnEventKind = churn.EventKind
	// ChurnEvent is one scripted lifecycle event.
	ChurnEvent = churn.Event
	// ChurnEventRecord is one applied event in the report's audit trail.
	ChurnEventRecord = churn.EventRecord
	// ChurnReport is the study outcome: the per-epoch time series, the
	// event audit trail, and fleet-level totals.
	ChurnReport = churn.Report
	// ChurnEpochReport is one control epoch's measured outcome.
	ChurnEpochReport = churn.EpochReport
	// Rebalancer plans volume migrations between control epochs.
	Rebalancer = churn.Rebalancer
	// NeverMove is the do-nothing rebalancer: the baseline that accepts
	// whatever packing lifecycle events leave behind.
	NeverMove = churn.NeverMove
	// ThresholdRebalance migrates volumes off backends whose nominal
	// utilization exceeds HighUtil, up to the spec's migration budget.
	ThresholdRebalance = churn.Threshold
	// DrainRebalance is the lazy variant of ThresholdRebalance: the same
	// trigger, at most one migration per epoch.
	DrainRebalance = churn.Drain
)

// Lifecycle event kinds for scripted churn timelines (ChurnSpec.Script).
const (
	ChurnCreate   = churn.Create
	ChurnDelete   = churn.Delete
	ChurnExpand   = churn.Expand
	ChurnShrink   = churn.Shrink
	ChurnSnapshot = churn.Snapshot
)

// RunChurn executes a fleet churn study: the placement policy packs the
// initial catalog, each epoch applies lifecycle events (create, expand,
// shrink, delete, snapshot-as-write-burst) and the rebalancer's moves on
// the nominal demand numbers, and every epoch's backend populations are
// simulated through one parallel sweep — cells deduplicated across epochs
// and shared with static fleet studies on the same cache. Deterministic
// for any worker count; with Fleet.Cache a warm re-run simulates zero new
// cells.
func RunChurn(ctx context.Context, s ChurnSpec) (*ChurnReport, error) {
	return churn.Run(ctx, s)
}

// DefaultRebalancers returns the built-in rebalancing policies in
// comparison order: never-move, threshold-triggered, background drain.
func DefaultRebalancers() []Rebalancer { return churn.Rebalancers() }

// RebalancerByName returns the built-in rebalancer with the given name
// ("never", "threshold", "drain").
func RebalancerByName(name string) (Rebalancer, error) { return churn.RebalancerByName(name) }

// FormatChurnReport writes the per-epoch churn table with totals.
func FormatChurnReport(w io.Writer, r *ChurnReport) { churn.Format(w, r) }

// WriteChurnEpochsCSV dumps the per-epoch churn time series
// (fleet_churn_epochs.csv) as CSV; see docs/formats.md for the schema.
func WriteChurnEpochsCSV(w io.Writer, r *ChurnReport) error { return churn.WriteEpochsCSV(w, r) }

// WriteChurnEventsCSV dumps the lifecycle-event audit trail
// (fleet_churn_events.csv) as CSV; see docs/formats.md for the schema.
func WriteChurnEventsCSV(w io.Writer, r *ChurnReport) error { return churn.WriteEventsCSV(w, r) }

// TraceProfile summarizes a trace's offered load (rate, write mix, mean
// request size) — the bridge from replayable records to the synthetic
// generator parameters the tenant-mix and fleet suites take.
type TraceProfile = trace.Profile

// ProfileTrace derives the offered-load profile of a record stream.
func ProfileTrace(recs []TraceRecord) TraceProfile { return trace.ProfileOf(recs) }

// Sweep-result caching: a SweepCache memoizes cell results across sweeps
// and searches, keyed by the cell's coordinate hash plus a fingerprint of
// the sweep's result-shaping settings. Attach one via Sweep.Cache,
// BurstSweep.Cache, or SLOSearch.Cache; persist it with SaveFile/LoadFile.
type SweepCache = expgrid.Cache

// NewSweepCache returns an empty result cache holding at most capacity
// entries (a sensible default when capacity <= 0).
func NewSweepCache(capacity int) *SweepCache { return expgrid.NewCache(capacity) }

// Latency-SLO search types: binary-searching offered rate for the highest
// rate whose steady-state tail latency meets a target, reporting both the
// pre-exhaustion and the post-cliff (credit-floor) answers.
type (
	// SLOSearch declares one search: device × workload spec, rate range,
	// and latency target.
	SLOSearch = slo.Search
	// SLOTarget is the tail-latency objective (p99 and/or p99.9).
	SLOTarget = slo.Target
	// SLOReport is a completed search with both SLO-max rates and every
	// probe.
	SLOReport = slo.Report
	// SLOProbe is one evaluated rate of a search.
	SLOProbe = slo.Probe
)

// SearchSLO runs a latency-SLO search. Probes repeat coordinates, so
// attach a SweepCache to skip re-simulation; a cache-warm repeat run
// executes zero new cells and reproduces identical measurements and CSV
// output (only the SLOProbe.Cached / SLOReport.CellsRun bookkeeping
// records the difference).
func SearchSLO(ctx context.Context, s SLOSearch) (*SLOReport, error) {
	return slo.Run(ctx, s)
}

// FormatSLOReport writes a human-readable search report.
func FormatSLOReport(w io.Writer, r *SLOReport) { slo.Format(w, r) }

// WriteSLOProbesCSV dumps the search's probes as CSV; see docs/formats.md
// for the schema.
func WriteSLOProbesCSV(w io.Writer, r *SLOReport) error { return slo.WriteProbesCSV(w, r) }

// Contract checker types.
type (
	// ContractReport is a full contract evaluation.
	ContractReport = contract.Report
	// ContractCheck is the verdict on one observation.
	ContractCheck = contract.Check
	// ContractOptions configure a contract evaluation.
	ContractOptions = contract.EvalOptions
)

// CheckContract runs the paper's four observation checks of the unwritten
// contract for an ESSD factory against a local-SSD baseline factory.
func CheckContract(essdFactory, ssdFactory DeviceFactory, opts ContractOptions) *ContractReport {
	return contract.Evaluate(essdFactory, ssdFactory, opts)
}

// FormatContract writes a human-readable contract report.
func FormatContract(w io.Writer, r *ContractReport) { contract.Format(w, r) }

// FormatAdvice writes the paper's five implications annotated by the
// report's outcomes.
func FormatAdvice(w io.Writer, r *ContractReport) { contract.FormatAdvice(w, r) }

// FormatWorkloadResult prints a fio-like summary of a run.
func FormatWorkloadResult(w io.Writer, r *WorkloadResult) {
	harness.FormatWorkloadResult(w, r)
}

// Key-value storage engine types (package kv): two write-path designs over
// simulated block devices — the leveled LSM engine and the update-in-place
// page store — with honest device-level I/O accounting, plus the ingest
// harness and the multi-tenant open-loop mix runner.
type (
	// KVEngine is the storage-engine interface both designs implement:
	// Put/Get with completion callbacks, write batches, a background-work
	// barrier, and a Stats snapshot.
	KVEngine = kv.Engine
	// KVStats is an engine's cumulative activity snapshot (user ops,
	// device I/O, flushes, compactions, cache hits, stalls) with
	// ReadAmp/WriteAmp helpers.
	KVStats = kv.Stats
	// KVLSMConfig shapes the LSM engine (memtable bytes, fanout, level-0
	// compaction trigger, bytes-per-level growth).
	KVLSMConfig = kv.LSMConfig
	// KVPageStoreConfig shapes the page store (page size, cache pages).
	KVPageStoreConfig = kv.PageStoreConfig
	// KVIngestSpec declares a closed-loop bulk-load measurement.
	KVIngestSpec = kv.IngestSpec
	// KVIngestResult is a completed ingest measurement.
	KVIngestResult = kv.IngestResult
	// KVMixSpec is one tenant's open-loop zipfian read/write traffic.
	KVMixSpec = kv.MixSpec
	// KVMixTenant pairs a storage engine with the traffic that drives it.
	KVMixTenant = kv.MixTenant
	// KVMixResult is one tenant's measurement from a RunKVMix call.
	KVMixResult = kv.MixResult
	// KVMixProfile is a measured tenant's device-level demand shape,
	// placeable via KVDemand.
	KVMixProfile = kv.MixProfile
)

// NewKVLSM builds a leveled LSM engine over the device.
func NewKVLSM(dev Device, cfg KVLSMConfig) *kv.LSM { return kv.NewLSM(dev, cfg) }

// DefaultKVLSMConfig returns the stock LSM shape (8 MiB memtable, fanout
// 10, level-0 trigger 4).
func DefaultKVLSMConfig() KVLSMConfig { return kv.DefaultLSMConfig() }

// NewKVPageStore builds an update-in-place page store over the device.
func NewKVPageStore(dev Device, cfg KVPageStoreConfig) *kv.PageStore {
	return kv.NewPageStore(dev, cfg)
}

// DefaultKVPageStoreConfig sizes pages to the device's block size and the
// cache to a fraction of its capacity.
func DefaultKVPageStoreConfig(dev Device) KVPageStoreConfig {
	return kv.DefaultPageStoreConfig(dev)
}

// KVIngest runs a closed-loop bulk load against the engine and returns
// its throughput and amplification measurement.
func KVIngest(eng *Engine, e KVEngine, spec KVIngestSpec) KVIngestResult {
	return kv.IngestRun(eng, e, spec)
}

// RunKVMixTenants drives several KV tenants' open-loop arrival schedules
// concurrently inside one simulation engine — the multi-tenant regime
// where one tenant's compactions contend with another's point reads on a
// shared backend. Results are in tenant order.
func RunKVMixTenants(eng *Engine, tenants []KVMixTenant) []*KVMixResult {
	return kv.RunMix(eng, tenants)
}

// KVProfileOf summarizes a mix result as the device-level demand shape
// the tenant's engine actually offered.
func KVProfileOf(r *KVMixResult) KVMixProfile { return kv.ProfileOf(r) }

// KVDemand converts a measured KV tenant profile into a placeable fleet
// demand (the engine-translated device load, not the user op rate).
func KVDemand(name string, p KVMixProfile, blockSize int64) (FleetDemand, error) {
	return fleet.DemandFromKV(name, p, blockSize)
}

// KV tenant-mix suite types: the engine × skew × value-size × tier sweep
// over shared backends (internal/scenario.KVMixSweep).
type (
	// KVMixSweep declares the suite's axes and per-tenant shape.
	KVMixSweep = scenario.KVMixSweep
	// KVMixReport is the folded suite measurement.
	KVMixReport = scenario.KVMixReport
	// KVMixCell is one measured cell of the suite.
	KVMixCell = scenario.KVMixCell
)

// RunKVMix executes the KV tenant-mix suite on the expgrid worker pool.
// Results are deterministic for any worker count; attach a SweepCache and
// a repeat run executes zero new cells.
func RunKVMix(ctx context.Context, s KVMixSweep) (*KVMixReport, error) {
	return scenario.RunKVMix(ctx, s)
}

// FormatKVMix writes a human-readable KV tenant-mix report.
func FormatKVMix(w io.Writer, r *KVMixReport) { scenario.FormatKVMix(w, r) }

// WriteKVMixCSV dumps the suite's per-cell table (kv_cells.csv) as CSV;
// see docs/formats.md for the schema.
func WriteKVMixCSV(w io.Writer, r *KVMixReport) error { return scenario.WriteKVCSV(w, r) }

// Observability types (internal/obs): deterministic sampled request
// tracing, simulated-time state probes, and the cliff-attribution report.
// Both planes are off by default and, when on, never perturb simulation
// results — traced runs are byte-identical to untraced ones.
type (
	// ObsConfig enables the observability planes: SampleEvery traces every
	// Nth request per volume, and a positive ProbeInterval samples state
	// gauges on that simulated-time cadence. A nil *ObsConfig is fully off.
	ObsConfig = obs.Config
	// ObsCapture is one simulation's observability output: a label plus
	// its tracer and (optional) prober.
	ObsCapture = obs.Capture
	// ObsTracer records sampled per-request spans.
	ObsTracer = obs.Tracer
	// ObsProber samples registered state gauges on a cadence.
	ObsProber = obs.Prober
	// ObsSpan is one recorded stage of a traced request.
	ObsSpan = obs.Span
	// ObsExplanation is one cell's cliff-attribution report.
	ObsExplanation = obs.Explanation
)

// InstrumentDevice attaches an observability capture to a single elastic
// device: a tracer sampling every cfg.SampleEvery-th request and, when
// cfg.ProbeInterval is positive, a prober over the device's shared
// backend (cluster debt and node queues, fabric backlogs, every attached
// volume's gauges). Non-elastic devices (the local SSD) have no backend
// or QoS state to observe and are rejected.
func InstrumentDevice(dev Device, label string, cfg *ObsConfig) (*ObsCapture, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e, ok := dev.(*essd.ESSD)
	if !ok {
		return nil, fmt.Errorf("observability needs an elastic (essd-class) device; %s has no backend to trace", dev.Name())
	}
	cap := &ObsCapture{Label: label, Tracer: obs.NewTracer(cfg.SampleEvery)}
	e.SetTracer(cap.Tracer)
	if cfg.ProbeInterval > 0 {
		cap.Prober = obs.NewProber(cfg.ProbeInterval)
		e.Backend().InstallProbes(cap.Prober)
		cap.Prober.Attach(e.Engine())
	}
	return cap, nil
}

// WriteTraceCSV dumps the captures' sampled request spans as CSV; see
// docs/formats.md for the schema.
func WriteTraceCSV(w io.Writer, caps []*ObsCapture) error { return obs.WriteTraceCSV(w, caps) }

// WriteTraceEvents dumps the captures' spans as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing.
func WriteTraceEvents(w io.Writer, caps []*ObsCapture) error { return obs.WriteTraceEvents(w, caps) }

// WriteProbesCSV dumps the captures' state-probe series as CSV; see
// docs/formats.md for the schema.
func WriteProbesCSV(w io.Writer, caps []*ObsCapture) error { return obs.WriteProbesCSV(w, caps) }

// WriteProbesJSON dumps the captures' state-probe series as JSON.
func WriteProbesJSON(w io.Writer, caps []*ObsCapture) error { return obs.WriteProbesJSON(w, caps) }

// FormatExplanations writes the per-cell cliff-attribution report.
func FormatExplanations(w io.Writer, exps []*ObsExplanation) { obs.FormatExplanations(w, exps) }
