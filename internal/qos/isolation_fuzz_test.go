package qos

import "testing"

// FuzzParseIsolationPolicy pins the parser/String round trip over
// arbitrary input: any accepted name must be in IsolationPolicyNames and
// must survive name -> policy -> String -> policy unchanged; everything
// else must produce the descriptive error, never a panic.
func FuzzParseIsolationPolicy(f *testing.F) {
	for _, name := range IsolationPolicyNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("FIFO")
	f.Add("wfq ")
	f.Add("drr")
	f.Fuzz(func(t *testing.T, name string) {
		p, err := ParseIsolationPolicy(name)
		if err != nil {
			return
		}
		if p.String() != name {
			t.Fatalf("accepted %q but String() says %q", name, p.String())
		}
		valid := false
		for _, n := range IsolationPolicyNames() {
			if n == name {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("accepted %q, which IsolationPolicyNames does not list", name)
		}
		back, err := ParseIsolationPolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("round trip of %q: got %v, %v", name, back, err)
		}
	})
}
