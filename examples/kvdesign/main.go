// kvdesign is the paper's future-work case study in miniature: should a
// persistent key-value store on an ESSD still convert random writes into
// sequential writes (LSM / log-structured designs), as RocksDB does for
// local SSDs?
//
// Two real write-path engines from package kv ingest the same put stream:
//
//   - kv.PageStore: update-in-place — every put reads (on cache miss) and
//     rewrites its 4 KiB page at a fixed random location. The pattern
//     local-SSD lore says to avoid.
//   - kv.LSM: leveled log-structured merge — puts buffer in a memtable,
//     flush and compaction stream large sequential segments, paying
//     write amplification for sequentiality.
//
// We measure effective ingest rate on a fresh local SSD, an aged local SSD
// (full, GC active), and the two ESSDs. The local SSD tells the classic
// story: in-place collapses once GC starts, log-structuring wins. The
// ESSDs rewrite it (Observation #3 + Implication #3).
package main

import (
	"fmt"

	"essdsim"
	"essdsim/kv"
)

const (
	puts      = 200_000
	valueSize = 1024
	clients   = 32
	// keySpace is sized under the page cache so the in-place engine's
	// steady state is pure random page WRITES — the pattern Observation #3
	// is about — rather than cache-miss reads.
	keySpace = 100_000
)

func device(name string, aged bool) (*essdsim.Engine, essdsim.Device) {
	eng := essdsim.NewEngine()
	dev, err := essdsim.NewDevice(name, eng, 31)
	if err != nil {
		panic(err)
	}
	if aged {
		// Fill completely with a randomized layout, then churn random
		// overwrites to pull the FTL into steady-state GC.
		essdsim.Precondition(dev, false)
		essdsim.Run(dev, essdsim.Workload{
			Pattern:    essdsim.RandWrite,
			BlockSize:  64 << 10,
			QueueDepth: 32,
			TotalBytes: dev.Capacity() / 8,
			Seed:       77,
		})
	} else {
		essdsim.Precondition(dev, true)
	}
	return eng, dev
}

func run(name string, aged bool, lsm bool) kv.IngestResult {
	eng, dev := device(name, aged)
	var engine kv.Engine
	if lsm {
		engine = kv.NewLSM(dev, kv.DefaultLSMConfig())
	} else {
		engine = kv.NewPageStore(dev, kv.DefaultPageStoreConfig(dev))
	}
	return kv.Ingest(eng, engine, puts, valueSize, clients, keySpace, 13)
}

func main() {
	fmt.Println("KV write-path design study: update-in-place vs log-structured")
	fmt.Printf("%d puts of %d B, %d client streams, real kv engines.\n\n",
		puts, valueSize, clients)
	fmt.Printf("%-22s %-16s %-20s %-10s %s\n",
		"device", "in-place Kops/s", "log-structured Kops/s", "LSM WA", "winner")
	rows := []struct {
		name string
		aged bool
		desc string
	}{
		{"ssd", false, "SSD (fresh)"},
		{"ssd", true, "SSD (aged, GC active)"},
		{"essd1", false, "ESSD-1 (io2)"},
		{"essd2", false, "ESSD-2 (PL3)"},
	}
	for _, row := range rows {
		ip := run(row.name, row.aged, false)
		ls := run(row.name, row.aged, true)
		winner := "log-structured"
		if ip.PutsPerSec() > ls.PutsPerSec() {
			winner = "in-place"
		}
		fmt.Printf("%-22s %-16.0f %-20.0f %-10.1f %s\n",
			row.desc, ip.PutsPerSec()/1e3, ls.PutsPerSec()/1e3,
			ls.Stats.WriteAmp(), winner)
	}
	fmt.Println()
	fmt.Println("Reading the table: on the aged local SSD the LSM wins by ~7x because")
	fmt.Println("device GC punishes random page writes — why RocksDB-style designs exist.")
	fmt.Println("On the ESSDs that punishment is gone (Observation #2/#3); what remains")
	fmt.Println("of the LSM's lead comes from batching (its memtable ack and 256K")
	fmt.Println("segments vs one budget-priced 4K I/O per put), not from sequentiality.")
	fmt.Println("Implication #3: re-derive the design from the volume's budget and")
	fmt.Println("stream limits — the local-SSD GC argument no longer applies.")
}
