package scenario

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"essdsim/internal/blockdev"
	"essdsim/internal/essd"
	"essdsim/internal/expgrid"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

func tierFactory(cfg essd.Config) expgrid.Factory {
	return func(seed uint64) blockdev.Device {
		return essd.New(sim.NewEngine(), cfg, sim.NewRNG(seed, seed^0x7))
	}
}

// TestBurstExhaustionMatchesCreditMath pins the measured exhaustion time
// and post-cliff throughput to the CreditBucket's analytic model on a tier
// whose credit machinery dominates every other limit:
//
//   - consumption at offered rate r (< burst ceiling R) drains credits at
//     r·(1-B/R) - B per second (B = baseline earn), so the bank of C bytes
//     empties at t = C / (r·(1-B/R) - B);
//   - after exhaustion a backlogged open loop sustains between B and the
//     just-in-time floor min(R, 2B).
func TestBurstExhaustionMatchesCreditMath(t *testing.T) {
	cfg := profiles.GP2Config()
	cfg.Name = "tiny-burst"
	cfg.ThroughputBudget = 400e6 // R: burst ceiling
	cfg.BurstBaseline = 100e6    // B
	cfg.BurstCreditBytes = 200e6 // C
	const (
		rate = 1200.0
		bs   = 256 << 10
	)
	rep, err := RunBurst(context.Background(), BurstSweep{
		Devices:        []expgrid.NamedFactory{{Name: "tiny", New: tierFactory(cfg)}},
		WriteRatiosPct: []int{0, 100}, // all-reads and all-writes cells
		Arrivals:       []workload.Arrival{workload.Uniform},
		RatesPerSec:    []float64{rate},
		BlockSize:      bs,
		Ops:            3000,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d", len(rep.Cells))
	}

	offered := rate * bs
	drain := offered*(1-cfg.BurstBaseline/cfg.ThroughputBudget) - cfg.BurstBaseline
	wantTTX := cfg.BurstCreditBytes / drain // ≈ 1.47 s
	floor := 2 * cfg.BurstBaseline          // min(R, 2B)

	for _, c := range rep.Cells {
		if !c.Burstable || c.Exhaustions == 0 || c.ExhaustedAt < 0 {
			t.Fatalf("wr=%d%%: no exhaustion captured: %+v", c.WriteRatioPct, c)
		}
		if got := c.Floor; got != floor {
			t.Errorf("wr=%d%%: floor = %v, want %v", c.WriteRatioPct, got, floor)
		}
		ttx := c.ExhaustedAt.Seconds()
		if ttx < 0.9*wantTTX || ttx > 1.15*wantTTX {
			t.Errorf("wr=%d%%: exhausted at %.3fs, want ≈%.3fs", c.WriteRatioPct, ttx, wantTTX)
		}
		// Pre-cliff the device keeps up with the offered rate.
		if c.PreCliffBps < 0.85*offered || c.PreCliffBps > 1.1*offered {
			t.Errorf("wr=%d%%: pre-cliff rate %.3g, offered %.3g", c.WriteRatioPct, c.PreCliffBps, offered)
		}
		// Post-cliff throughput collapses into the [baseline, floor] band.
		if c.PostCliffBps < 0.85*cfg.BurstBaseline || c.PostCliffBps > 1.1*floor {
			t.Errorf("wr=%d%%: post-cliff rate %.3g outside [%.3g, %.3g]",
				c.WriteRatioPct, c.PostCliffBps, cfg.BurstBaseline, floor)
		}
		// And the latency cliff is dramatic.
		if c.PostCliffLat < 10*c.PreCliffLat {
			t.Errorf("wr=%d%%: no latency cliff: pre %v post %v",
				c.WriteRatioPct, c.PreCliffLat, c.PostCliffLat)
		}
	}

	// Observation #4: the byte budget is pattern-blind, so all-reads and
	// all-writes exhaust at nearly the same time.
	r, w := rep.Cells[0].ExhaustedAt.Seconds(), rep.Cells[1].ExhaustedAt.Seconds()
	if diff := (r - w) / wantTTX; diff > 0.1 || diff < -0.1 {
		t.Errorf("read/write exhaustion split: %.3fs vs %.3fs", r, w)
	}
}

// TestBurstSuiteDeterministicAcrossWorkers is the acceptance grid: two
// burstable devices × three write ratios × uniform/bursty arrivals through
// the expgrid pool, byte-identical at 1 and 8 workers.
func TestBurstSuiteDeterministicAcrossWorkers(t *testing.T) {
	base := BurstSweep{
		WriteRatiosPct: []int{0, 50, 100},
		Arrivals:       []workload.Arrival{workload.Uniform, workload.Bursty},
		RatesPerSec:    []float64{3000},
		Ops:            1200,
		Seed:           5,
	}
	run := func(workers int) *BurstReport {
		s := base
		s.Workers = workers
		rep, err := RunBurst(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial, parallel := run(1), run(8)
	if len(serial.Cells) != 12 { // 2 devices × 3 ratios × 2 arrivals
		t.Fatalf("cells = %d, want 12", len(serial.Cells))
	}
	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial.Cells {
			if !reflect.DeepEqual(serial.Cells[i], parallel.Cells[i]) {
				t.Fatalf("cell %d differs between 1 and 8 workers:\nserial:   %+v\nparallel: %+v",
					i, serial.Cells[i], parallel.Cells[i])
			}
		}
		t.Fatal("reports differ between 1 and 8 workers")
	}
	devices := map[string]bool{}
	for _, c := range serial.Cells {
		devices[c.Device] = true
		if !c.Burstable {
			t.Fatalf("default tier %s not burstable", c.Device)
		}
	}
	if !devices["gp2"] || !devices["gp2s"] {
		t.Fatalf("device axis wrong: %v", devices)
	}
}

// TestBurstBadBlockSizeReturnsError pins the failed-cell contract: the
// expgrid runner suppresses errored cells and surfaces the first error, so
// RunBurst returns it instead of folding partial results (or panicking on
// a nil measurement).
func TestBurstBadBlockSizeReturnsError(t *testing.T) {
	rep, err := RunBurst(context.Background(), BurstSweep{BlockSize: 1000, Ops: 10})
	if err == nil || rep != nil {
		t.Fatalf("bad block size: rep=%v err=%v", rep, err)
	}
	if !strings.Contains(err.Error(), "expgrid: cell") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestFormatBurst(t *testing.T) {
	rep := &BurstReport{
		BlockSize: 256 << 10,
		Ops:       100,
		Cells: []BurstCell{
			{
				Device: "gp2", WriteRatioPct: 50, Arrival: workload.Bursty,
				RatePerSec: 3000, OfferedBps: 786e6,
				Burstable: true, CreditsLeft: 12e6, Exhaustions: 1,
				ExhaustedAt: 2 * sim.Second, Throttled: true,
				PreCliffLat: 500 * sim.Microsecond, PostCliffLat: 700 * sim.Millisecond,
				PreCliffBps: 780e6, PostCliffBps: 340e6,
			},
			{Device: "ssd", Arrival: workload.Uniform, RatePerSec: 1000, ExhaustedAt: -1},
		},
	}
	var buf bytes.Buffer
	FormatBurst(&buf, rep)
	out := buf.String()
	for _, want := range []string{"2.00s", "12MB", "THROTTLED", "500µs", "700.00ms", "gp2", "bursty"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The non-burstable row shows dashes, not credit numbers.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "ssd") && !strings.Contains(line, "-") {
			t.Errorf("non-burstable row missing dashes: %q", line)
		}
	}
}
