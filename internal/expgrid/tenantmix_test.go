package expgrid

import (
	"context"
	"reflect"
	"testing"

	"essdsim/internal/essd"
	"essdsim/internal/profiles"
	"essdsim/internal/sim"
	"essdsim/internal/workload"
)

// tenantHook builds a tiny two-volume shared-backend mix from the cell
// coordinates: one fixed-rate "victim" plus c.Aggressors copies of a
// bursty writer at c.RatePerSec.
func tenantHook(c Cell) (*sim.Engine, []workload.Tenant) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(c.Seed, c.Seed^0x91)
	bcfg, vcfg := profiles.ESSD1Config().Split()
	be := essd.NewBackend(eng, bcfg, rng.Derive("backend"))
	mk := func(name string, rate float64, arrival workload.Arrival, n uint64, seed uint64) workload.Tenant {
		cfg := vcfg
		cfg.Name = name
		vol := be.Attach(cfg, rng)
		vol.Precondition(1)
		return workload.Tenant{Name: name, Dev: vol, Open: &workload.OpenSpec{
			Pattern: workload.RandWrite, BlockSize: 64 << 10,
			RatePerSec: rate, Arrival: arrival, Count: n, Seed: seed,
		}}
	}
	tenants := []workload.Tenant{mk("victim", 500, workload.Uniform, 300, c.Seed^1)}
	for i := 0; i < c.Aggressors; i++ {
		tenants = append(tenants, mk("aggr", c.RatePerSec, workload.Bursty, 200, c.Seed^uint64(2+i)))
	}
	return eng, tenants
}

func tenantSweep() Sweep {
	return Sweep{
		Kind:            TenantMix,
		Devices:         []NamedFactory{{Name: "shared"}},
		AggressorCounts: []int{0, 2},
		RatesPerSec:     []float64{1000, 2000},
		Tenants:         tenantHook,
		Seed:            5,
		Label:           "tenant-test",
	}
}

// TestTenantMixEnumeration checks the tenant grid's shape, order, and
// seed coordinates.
func TestTenantMixEnumeration(t *testing.T) {
	cells := tenantSweep().Cells()
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
		want := MixCellSeed(5, "tenant-test", "shared", c.Aggressors, c.RatePerSec, -1)
		if c.Seed != want {
			t.Fatalf("cell %d seed not coordinate-derived", i)
		}
	}
	if cells[0].Aggressors != 0 || cells[2].Aggressors != 2 {
		t.Fatal("aggressor axis not outer of rates")
	}
	if cells[0].RatePerSec != 1000 || cells[1].RatePerSec != 2000 {
		t.Fatal("rate axis not inner")
	}
}

// TestTenantMixParallelDeterminism checks tenant-mix cells are
// byte-identical at any worker count and return per-tenant results in
// tenant order.
func TestTenantMixParallelDeterminism(t *testing.T) {
	r1, err := Runner{Workers: 1}.Run(context.Background(), tenantSweep())
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Runner{Workers: 8}.Run(context.Background(), tenantSweep())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("tenant-mix sweep differs between 1 and 8 workers")
	}
	for _, r := range r1 {
		if len(r.Mix) != 1+r.Aggressors {
			t.Fatalf("cell %d has %d tenant results, want %d", r.Index, len(r.Mix), 1+r.Aggressors)
		}
		if r.Mix[0].Name != "victim" || r.Mix[0].Open == nil {
			t.Fatalf("cell %d victim result malformed: %+v", r.Index, r.Mix[0])
		}
		if r.Res != nil || r.Open != nil || r.Replay != nil {
			t.Fatalf("cell %d carries non-mix measurements", r.Index)
		}
	}
}

// TestTenantMixValidation checks the tenant-kind validation rules,
// including that nil device factories are allowed only for this kind.
func TestTenantMixValidation(t *testing.T) {
	ok := tenantSweep()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid tenant sweep rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Sweep){
		"no hook":       func(s *Sweep) { s.Tenants = nil },
		"no counts":     func(s *Sweep) { s.AggressorCounts = nil },
		"no rates":      func(s *Sweep) { s.RatesPerSec = nil },
		"bad rate":      func(s *Sweep) { s.RatesPerSec = []float64{0} },
		"negative aggr": func(s *Sweep) { s.AggressorCounts = []int{-1} },
	} {
		s := tenantSweep()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: tenant sweep accepted", name)
		}
	}
	// A nil factory stays an error for non-tenant kinds.
	closed := quickSweep()
	closed.Devices = []NamedFactory{{Name: "nil"}}
	if err := closed.Validate(); err == nil {
		t.Error("closed sweep accepted a nil device factory")
	}
}

// TestProgressCachedCount checks the cache-warm skip counter: a warm
// re-run reports every completion as cached, cumulatively.
func TestProgressCachedCount(t *testing.T) {
	cache := NewCache(0)
	sw := tenantSweep()
	sw.Cache = cache
	if _, err := (Runner{Workers: 2}).Run(context.Background(), sw); err != nil {
		t.Fatal(err)
	}
	var last Progress
	r := Runner{Workers: 2, OnProgress: func(p Progress) {
		if p.Cached > p.Done {
			t.Errorf("cached %d > done %d", p.Cached, p.Done)
		}
		last = p
	}}
	if _, err := r.Run(context.Background(), sw); err != nil {
		t.Fatal(err)
	}
	if last.Done != 4 || last.Cached != 4 {
		t.Fatalf("warm progress = %+v, want 4/4 cached", last)
	}
}
