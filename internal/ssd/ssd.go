// Package ssd assembles the simulated local NVMe SSD (the paper's Samsung
// 970 Pro stand-in) from the flash array (package flash) and the FTL
// (package ftl), adding the host-facing pieces: a full-duplex host link,
// firmware command processing, a sequential-read prefetcher and read cache.
//
// The behaviours the paper measures on the local SSD all emerge here:
//   - small writes acknowledge from the DRAM write buffer in ~10 µs;
//   - sequential reads hit the prefetch cache and rival write latency;
//   - random reads pay the flash tR on every miss;
//   - sustained writes collapse when GC engages near 90% of capacity
//     written (Fig 3), and max bandwidth depends on the read/write mix
//     through die-time sharing (Fig 5).
package ssd

import (
	"fmt"

	"essdsim/internal/blockdev"
	"essdsim/internal/flash"
	"essdsim/internal/ftl"
	"essdsim/internal/sim"
)

// Config parameterizes the assembled SSD.
type Config struct {
	Name  string
	Flash flash.Config
	FTL   ftl.Config

	HostLinkBW float64 // bytes/s in each direction (PCIe is full duplex)

	FirmwareSlots   int      // parallel command contexts in the controller
	FirmwareLatency sim.Dist // per-command processing time

	// Prefetcher.
	ReadCachePages  int // capacity of the read cache, in logical pages
	PrefetchDepth   int // logical pages to read ahead of a detected stream
	StreamTableSize int // concurrent sequential streams tracked
}

// DefaultConfig returns the scaled 970 Pro configuration: ~3.5 GB/s reads,
// ~2.7 GB/s sustained writes, ~60 µs 4 KiB random reads, ~10 µs buffered
// writes, with a userCapacity-sized address space.
func DefaultConfig(userCapacity int64) Config {
	return Config{
		Name: "SSD (970 Pro class)",
		Flash: flash.Config{
			Channels:       8,
			DiesPerChannel: 2,
			PlanesPerDie:   2,
			PagesPerBlock:  64,
			BlocksPerPlane: 1024, // informational; FTL sizes superblocks
			PageSize:       16 << 10,
			ReadLatency:    40 * sim.Microsecond,
			ProgramLatency: 190 * sim.Microsecond,
			EraseLatency:   3500 * sim.Microsecond,
			// TLC-like multi-modal program time, mean ≈ 190 µs.
			ProgramDist: sim.Mixture{Components: []sim.Weighted{
				{W: 0.34, D: sim.Const{V: 70 * sim.Microsecond}},
				{W: 0.33, D: sim.Const{V: 160 * sim.Microsecond}},
				{W: 0.33, D: sim.Const{V: 345 * sim.Microsecond}},
			}},
			ChannelBW: 1.2e9,
		},
		FTL:             ftl.DefaultConfig(userCapacity),
		HostLinkBW:      3.5e9,
		FirmwareSlots:   4,
		FirmwareLatency: sim.LogNormal{Median: 5 * sim.Microsecond, Sigma: 0.18},
		ReadCachePages:  4096,
		PrefetchDepth:   64,
		StreamTableSize: 8,
	}
}

// Counters tallies host-visible SSD activity.
type Counters struct {
	Reads, Writes, Trims, Flushes uint64
	ReadBytes, WriteBytes         int64
	CacheHits, CacheMisses        uint64
	Prefetches                    uint64
}

type cacheEntry struct {
	ready   bool
	waiters []func()
}

type stream struct {
	next int64 // expected next LPN
	hits int
	last sim.Time
}

// SSD is the assembled local SSD device. It implements blockdev.Device.
type SSD struct {
	eng *sim.Engine
	cfg Config
	rng *sim.RNG

	arr *flash.Array
	ftl *ftl.FTL

	up, down *sim.Pipe // host->device / device->host
	fw       *sim.Server

	cache      map[int64]*cacheEntry
	cacheOrder []int64 // FIFO eviction order
	streams    []stream

	counters Counters
}

// New builds the SSD on the engine with its own derived RNG streams.
func New(eng *sim.Engine, cfg Config, rng *sim.RNG) *SSD {
	if rng == nil {
		rng = sim.NewRNG(0x55d, 0x970)
	}
	s := &SSD{eng: eng, cfg: cfg, rng: rng.Derive("ssd:" + cfg.Name)}
	s.arr = flash.NewArray(eng, cfg.Flash, s.rng.Derive("flash"))
	s.ftl = ftl.New(eng, s.arr, cfg.FTL)
	s.up = sim.NewPipe(eng, "hostUp", cfg.HostLinkBW)
	s.down = sim.NewPipe(eng, "hostDown", cfg.HostLinkBW)
	slots := cfg.FirmwareSlots
	if slots < 1 {
		slots = 1
	}
	s.fw = sim.NewServer(eng, "fw", slots)
	s.cache = make(map[int64]*cacheEntry)
	s.streams = make([]stream, cfg.StreamTableSize)
	return s
}

// Name implements blockdev.Device.
func (s *SSD) Name() string { return s.cfg.Name }

// Capacity implements blockdev.Device.
func (s *SSD) Capacity() int64 { return s.cfg.FTL.UserCapacity }

// BlockSize implements blockdev.Device.
func (s *SSD) BlockSize() int { return int(s.cfg.FTL.LogicalPageSize) }

// Engine implements blockdev.Device.
func (s *SSD) Engine() *sim.Engine { return s.eng }

// FTL exposes the translation layer for harness inspection (write
// amplification, GC state, free space).
func (s *SSD) FTL() *ftl.FTL { return s.ftl }

// FlashCounters returns media operation counts.
func (s *SSD) FlashCounters() flash.Counters { return s.arr.Counters() }

// FTLWriteAmp returns the FTL's current write amplification factor.
func (s *SSD) FTLWriteAmp() float64 { return s.ftl.Counters().WriteAmplification() }

// Counters returns host-visible activity counters.
func (s *SSD) Counters() Counters { return s.counters }

// Precondition instantly fills fillFrac of the device as if written once
// (sequentially laid out unless randomized).
func (s *SSD) Precondition(fillFrac float64, randomized bool) {
	s.ftl.Precondition(fillFrac, randomized, s.rng.Derive("precondition"))
}

// Submit implements blockdev.Device.
func (s *SSD) Submit(r *blockdev.Request) {
	blockdev.Validate(s, r)
	r.Issued = s.eng.Now()
	switch r.Op {
	case blockdev.Write:
		s.submitWrite(r)
	case blockdev.Read:
		s.submitRead(r)
	case blockdev.Trim:
		s.submitTrim(r)
	case blockdev.Flush:
		s.submitFlush(r)
	default:
		panic(fmt.Sprintf("ssd: unknown op %v", r.Op))
	}
}

func (s *SSD) complete(r *blockdev.Request) {
	if r.OnComplete != nil {
		r.OnComplete(r, s.eng.Now())
	}
}

func (s *SSD) lpnRange(r *blockdev.Request) (lpn, count int64) {
	bs := s.cfg.FTL.LogicalPageSize
	return r.Offset / bs, r.Size / bs
}

func (s *SSD) submitWrite(r *blockdev.Request) {
	lpn, count := s.lpnRange(r)
	s.counters.Writes++
	s.counters.WriteBytes += r.Size
	s.fw.Visit(s.cfg.FirmwareLatency.Sample(s.rng), func() {
		s.up.Transfer(r.Size, func() {
			// Writes invalidate any cached copies.
			for i := int64(0); i < count; i++ {
				s.dropCache(lpn + i)
			}
			s.ftl.HostWrite(lpn, count, func() { s.complete(r) })
		})
	})
}

func (s *SSD) submitRead(r *blockdev.Request) {
	lpn, count := s.lpnRange(r)
	s.counters.Reads++
	s.counters.ReadBytes += r.Size
	s.fw.Visit(s.cfg.FirmwareLatency.Sample(s.rng), func() {
		s.detectStream(lpn, count)
		var misses []int64
		pending := 1 // guard against premature completion while classifying
		finishOne := func() {
			pending--
			if pending == 0 {
				s.down.Transfer(r.Size, func() { s.complete(r) })
			}
		}
		for i := int64(0); i < count; i++ {
			p := lpn + i
			if e, ok := s.cache[p]; ok {
				if e.ready {
					s.counters.CacheHits++
					continue
				}
				// In-flight prefetch: wait for it rather than re-read.
				s.counters.CacheHits++
				pending++
				e.waiters = append(e.waiters, finishOne)
				continue
			}
			s.counters.CacheMisses++
			misses = append(misses, p)
		}
		if len(misses) > 0 {
			pending++
			s.ftl.ReadList(misses, finishOne)
		}
		finishOne() // release the classification guard
	})
}

func (s *SSD) submitTrim(r *blockdev.Request) {
	lpn, count := s.lpnRange(r)
	s.counters.Trims++
	s.fw.Visit(s.cfg.FirmwareLatency.Sample(s.rng), func() {
		s.ftl.Trim(lpn, count)
		for i := int64(0); i < count; i++ {
			s.dropCache(lpn + i)
		}
		s.complete(r)
	})
}

func (s *SSD) submitFlush(r *blockdev.Request) {
	s.counters.Flushes++
	s.fw.Visit(s.cfg.FirmwareLatency.Sample(s.rng), func() {
		s.ftl.Flush(func() { s.complete(r) })
	})
}

// detectStream updates the sequential-stream table and triggers readahead
// when a stream is confirmed.
func (s *SSD) detectStream(lpn, count int64) {
	if s.cfg.PrefetchDepth <= 0 || len(s.streams) == 0 {
		return
	}
	now := s.eng.Now()
	oldest, match := 0, -1
	for i := range s.streams {
		if s.streams[i].next == lpn && s.streams[i].hits > 0 {
			match = i
			break
		}
		if s.streams[i].last < s.streams[oldest].last {
			oldest = i
		}
	}
	if match < 0 {
		s.streams[oldest] = stream{next: lpn + count, hits: 1, last: now}
		return
	}
	st := &s.streams[match]
	st.next = lpn + count
	st.hits++
	st.last = now
	if st.hits >= 2 {
		s.prefetch(st.next, int64(s.cfg.PrefetchDepth))
	}
}

// prefetch reads [from, from+depth) into the read cache in the background.
func (s *SSD) prefetch(from, depth int64) {
	maxLPN := s.ftl.UserLPNs()
	var todo []int64
	for p := from; p < from+depth && p < maxLPN; p++ {
		if _, ok := s.cache[p]; ok {
			continue
		}
		s.insertCache(p, false)
		todo = append(todo, p)
	}
	if len(todo) == 0 {
		return
	}
	s.counters.Prefetches += uint64(len(todo))
	s.ftl.ReadList(todo, func() {
		for _, p := range todo {
			if e, ok := s.cache[p]; ok && !e.ready {
				e.ready = true
				for _, w := range e.waiters {
					w()
				}
				e.waiters = nil
			}
		}
	})
}

func (s *SSD) insertCache(lpn int64, ready bool) {
	for len(s.cacheOrder) >= s.cfg.ReadCachePages {
		victim := s.cacheOrder[0]
		s.cacheOrder = s.cacheOrder[1:]
		e, ok := s.cache[victim]
		if !ok {
			continue // already dropped by a write or trim
		}
		if !e.ready {
			// In-flight prefetch is pinned; rotate it to the back. The cache
			// may transiently exceed capacity by the in-flight count.
			s.cacheOrder = append(s.cacheOrder, victim)
			break
		}
		delete(s.cache, victim)
	}
	s.cache[lpn] = &cacheEntry{ready: ready}
	s.cacheOrder = append(s.cacheOrder, lpn)
}

func (s *SSD) dropCache(lpn int64) {
	if e, ok := s.cache[lpn]; ok && e.ready {
		delete(s.cache, lpn)
	}
}

var _ blockdev.Device = (*SSD)(nil)
