package kv

import "testing"

// TestIngestGoldens pins the full IngestResult of four fixed-seed ingest
// runs — virtual elapsed time and every Stats counter — against values
// captured before the allocation-free hot-path rework. Any change to put
// admission order, flush/compaction scheduling, stream offset allocation,
// or key drawing shows up here as a byte-level diff. The perf work must
// keep these byte-identical.
func TestIngestGoldens(t *testing.T) {
	type golden struct {
		engine      string
		puts        uint64
		valueSize   int64
		concurrency int
		keySpace    uint64
		seed        uint64

		elapsedNs int64
		stats     Stats
	}
	goldens := []golden{
		{
			engine: "lsm", puts: 800, valueSize: 1024, concurrency: 8,
			keySpace: 1 << 14, seed: 42,
			elapsedNs: 8837621,
			stats: Stats{
				Puts: 800, UserBytes: 819200,
				DeviceWrites: 20, DeviceWriteBytes: 2392064,
				DeviceReads: 7, DeviceReadBytes: 1572864,
				Flushes: 13, Compactions: 4, Stalls: 17,
			},
		},
		{
			engine: "pagestore", puts: 800, valueSize: 1024, concurrency: 8,
			keySpace: 1 << 14, seed: 42,
			elapsedNs: 26374294,
			stats: Stats{
				Puts: 800, UserBytes: 819200,
				DeviceWrites: 800, DeviceWriteBytes: 3276800,
				DeviceReads: 782, DeviceReadBytes: 3203072,
			},
		},
		{
			engine: "lsm", puts: 5000, valueSize: 512, concurrency: 16,
			keySpace: 1 << 16, seed: 7,
			elapsedNs: 32028694,
			stats: Stats{
				Puts: 5000, UserBytes: 2560000,
				DeviceWrites: 72, DeviceWriteBytes: 10227712,
				DeviceReads: 32, DeviceReadBytes: 7667712,
				Flushes: 40, Compactions: 10, Stalls: 51,
			},
		},
		{
			engine: "pagestore", puts: 2000, valueSize: 512, concurrency: 16,
			keySpace: 1 << 16, seed: 7,
			elapsedNs: 35118420,
			stats: Stats{
				Puts: 2000, UserBytes: 1024000,
				DeviceWrites: 2000, DeviceWriteBytes: 8192000,
				DeviceReads: 1972, DeviceReadBytes: 8077312,
			},
		},
	}
	for _, g := range goldens {
		g := g
		t.Run(g.engine, func(t *testing.T) {
			eng, dev := newDev(t, "essd2")
			var e Engine
			switch g.engine {
			case "lsm":
				cfg := DefaultLSMConfig()
				cfg.MemtableBytes = 64 << 10
				cfg.L0CompactTrigger = 2
				e = NewLSM(dev, cfg)
			case "pagestore":
				e = NewPageStore(dev, DefaultPageStoreConfig(dev))
			}
			res := Ingest(eng, e, g.puts, g.valueSize, g.concurrency, g.keySpace, g.seed)
			if int64(res.Elapsed) != g.elapsedNs {
				t.Errorf("elapsed %d ns, golden %d ns", int64(res.Elapsed), g.elapsedNs)
			}
			if res.Stats != g.stats {
				t.Errorf("stats drifted:\n got  %+v\n want %+v", res.Stats, g.stats)
			}
			if res.Device != dev.Name() {
				t.Errorf("result device %q, want %q", res.Device, dev.Name())
			}
			if res.Engine != g.engine || res.Puts != g.puts ||
				res.UserBytes != int64(g.puts)*g.valueSize {
				t.Errorf("result header drifted: %+v", res)
			}
		})
	}
}
