package fleet

import (
	"fmt"
	"sort"

	"essdsim/internal/sim"
	"essdsim/internal/trace"
	"essdsim/internal/workload"
	"essdsim/kv"
)

// Demand describes one tenant volume the fleet must place: its identity
// and the open-loop load it will offer once attached. A demand is the
// provider-visible summary of a tenant — the placement policies see only
// these numbers, never the simulated future.
type Demand struct {
	// Name labels the tenant across the placement, the simulation, and
	// every report row. Names must be unique within a Spec and must not
	// contain the characters used by the cell naming ("[", "]", "+", "|").
	Name string

	// RatePerSec is the offered request rate.
	RatePerSec float64
	// BlockSize is the request payload in bytes.
	BlockSize int64
	// WriteRatioPct is the percentage of requests that are writes
	// (0–100); -1 means a pure-read tenant.
	WriteRatioPct int
	// Arrival selects the tenant's arrival process.
	Arrival workload.Arrival
	// Ops bounds the tenant's request count; 0 derives it from the spec
	// horizon (RatePerSec × Spec.Horizon).
	Ops uint64
}

// OfferedBps returns the demand's nominal offered load in bytes/s.
func (d Demand) OfferedBps() float64 { return d.RatePerSec * float64(d.BlockSize) }

// writeFrac returns the demand's write fraction in [0, 1].
func (d Demand) writeFrac() float64 {
	if d.WriteRatioPct < 0 {
		return 0
	}
	return float64(d.WriteRatioPct) / 100
}

// WriteBps returns the demand's nominal offered write load in bytes/s.
func (d Demand) WriteBps() float64 { return d.OfferedBps() * d.writeFrac() }

// signature renders the demand's load shape (everything except the name)
// for solo-control dedup and cache-key labels: two demands with equal
// signatures are interchangeable workloads.
func (d Demand) signature() string {
	return fmt.Sprintf("r%g/bs%d/wr%d/%s/n%d",
		d.RatePerSec, d.BlockSize, d.WriteRatioPct, d.Arrival, d.Ops)
}

// Validate reports a descriptive error for a nonsensical demand.
func (d Demand) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("fleet: demand has no name")
	case d.RatePerSec <= 0:
		return fmt.Errorf("fleet: demand %s rate %v not positive", d.Name, d.RatePerSec)
	case d.BlockSize <= 0:
		return fmt.Errorf("fleet: demand %s block size %d not positive", d.Name, d.BlockSize)
	case d.WriteRatioPct < -1 || d.WriteRatioPct > 100:
		return fmt.Errorf("fleet: demand %s write ratio %d%% out of [-1, 100]", d.Name, d.WriteRatioPct)
	}
	return nil
}

// SyntheticDemands builds a deterministic tenant catalog of total demands,
// aggressors of which are bursty write floods (256 KiB, all-write at
// 1600 req/s — the noisy-neighbor suite's aggressor shape) spread evenly
// through a population of steady mixed victims (64 KiB, half-write at
// 300 req/s). It is the default catalog of the fleet CLI and examples.
func SyntheticDemands(total, aggressors int) []Demand {
	if aggressors > total {
		aggressors = total
	}
	demands := make([]Demand, 0, total)
	next, placed := 0, 0
	for i := 0; i < total; i++ {
		if placed < aggressors && i == next {
			demands = append(demands, Demand{
				Name:          fmt.Sprintf("aggr%02d", placed),
				RatePerSec:    1600,
				BlockSize:     256 << 10,
				WriteRatioPct: 100,
				Arrival:       workload.Bursty,
			})
			placed++
			if aggressors > 0 {
				next = (placed * total) / aggressors
			}
			continue
		}
		demands = append(demands, Demand{
			Name:          fmt.Sprintf("ten%02d", i),
			RatePerSec:    300,
			BlockSize:     64 << 10,
			WriteRatioPct: 50,
			Arrival:       workload.Uniform,
		})
	}
	return demands
}

// DemandFromTrace converts a real trace into a placeable tenant demand:
// the records are fitted onto the fleet's volume geometry (trace.Fit) and
// profiled (trace.ProfileOf), and the profile's mean rate, request-count
// write mix, and mean size (rounded up to whole blocks) become the
// demand's open-loop shape under a Poisson arrival process. Ops is left 0
// so the spec horizon bounds the tenant like any synthetic demand. It
// errors on traces with no defined rate (empty, single-record, or
// instantaneous bursts).
func DemandFromTrace(name string, recs []trace.Record, capacity, blockSize int64) (Demand, error) {
	p := trace.ProfileOf(trace.Fit(recs, capacity, blockSize))
	if p.RatePerSec <= 0 {
		return Demand{}, fmt.Errorf("fleet: trace for %s has no defined rate (%d records over %v)",
			name, p.Ops, p.Span)
	}
	bs := (p.MeanSize + blockSize - 1) / blockSize * blockSize
	if bs <= 0 {
		bs = blockSize
	}
	return Demand{
		Name:          name,
		RatePerSec:    p.RatePerSec,
		BlockSize:     bs,
		WriteRatioPct: p.WriteRatioPct,
		Arrival:       workload.Poisson,
	}, nil
}

// DemandFromKV converts a measured KV tenant's device-level demand shape
// (kv.ProfileOf) into a placeable tenant demand. The profile already
// reflects the storage engine's translation of user ops into device
// traffic — an LSM's flush/compaction streams, a page store's page-sized
// read-modify-writes — so placement packs the load the backend will
// actually see, not the user-facing op rate. The mean request size is
// rounded up to whole blocks and the arrival process is Poisson, matching
// DemandFromTrace. It errors on profiles with no defined rate (a tenant
// that measured no device I/O).
func DemandFromKV(name string, p kv.MixProfile, blockSize int64) (Demand, error) {
	if p.RatePerSec <= 0 {
		return Demand{}, fmt.Errorf("fleet: kv profile for %s has no defined device rate", name)
	}
	bs := (p.MeanSize + blockSize - 1) / blockSize * blockSize
	if bs <= 0 {
		bs = blockSize
	}
	return Demand{
		Name:          name,
		RatePerSec:    p.RatePerSec,
		BlockSize:     bs,
		WriteRatioPct: p.WriteRatioPct,
		Arrival:       workload.Poisson,
	}, nil
}

// Constraints carries the per-backend packing budgets a placement policy
// places against. EffectiveBps caps each demand's long-run offered rate at
// the volume class's analytic sustainable rate (qos.CreditBucket analytics
// for burstable tiers, the throughput budget otherwise); 0 leaves demands
// uncapped.
type Constraints struct {
	// Backends is the number of backends available (indices 0..Backends-1).
	Backends int
	// BackendBps is the nominal offered bytes/s budget of one backend.
	BackendBps float64
	// WriteBps is the write-absorption budget of one backend: the write
	// bytes/s its cleaner and spare capacity can take before co-located
	// tenants start throttling each other.
	WriteBps float64
	// EffectiveBps caps a single volume's sustainable bytes/s.
	EffectiveBps float64
}

// effOffered returns the demand's effective offered bytes/s under the
// per-volume sustainability cap.
func (c Constraints) effOffered(d Demand) float64 {
	bps := d.OfferedBps()
	if c.EffectiveBps > 0 && bps > c.EffectiveBps {
		bps = c.EffectiveBps
	}
	return bps
}

// effWrite returns the demand's effective offered write bytes/s.
func (c Constraints) effWrite(d Demand) float64 { return c.effOffered(d) * d.writeFrac() }

// PlacementPolicy assigns tenant demands to backends. Place returns one
// backend index in [0, c.Backends) per demand, in demand order. Policies
// are best-effort: when no backend can fit a demand within budget they
// still place it (on the least-loaded candidate) rather than failing —
// the resulting over-subscription shows up in the report's utilization and
// violation columns, which is the point of the study. Implementations
// must be deterministic pure functions of their inputs.
type PlacementPolicy interface {
	Name() string
	Place(c Constraints, demands []Demand) []int
}

// DefaultPolicies returns the four built-in policies in fixed order:
// first-fit, spread, best-fit, interference-aware.
func DefaultPolicies() []PlacementPolicy {
	return []PlacementPolicy{FirstFit{}, Spread{}, BestFit{}, InterferenceAware{}}
}

// PolicyByName returns the built-in policy with the given Name.
func PolicyByName(name string) (PlacementPolicy, error) {
	for _, p := range DefaultPolicies() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("fleet: unknown policy %q (want first-fit, spread, best-fit, or interference)", name)
}

// FirstFit packs by nominal rate: each demand lands on the lowest-index
// backend whose residual nominal budget still fits it, opening backends
// left to right. This is the densest of the built-in policies — it uses
// the fewest backends and, by the same token, concentrates load (and
// cross-tenant interference) on the early ones.
type FirstFit struct{}

// Name implements PlacementPolicy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements PlacementPolicy.
func (FirstFit) Place(c Constraints, demands []Demand) []int {
	used := make([]float64, c.Backends)
	out := make([]int, len(demands))
	for i, d := range demands {
		bps := d.OfferedBps()
		placed := -1
		for b := 0; b < c.Backends; b++ {
			if used[b]+bps <= c.BackendBps {
				placed = b
				break
			}
		}
		if placed < 0 {
			placed = minLoadIndex(used)
		}
		used[placed] += bps
		out[i] = placed
	}
	return out
}

// Spread round-robins demands across every available backend — the widest
// placement at a given backend count. It ignores budgets entirely: density
// is the caller's choice via Constraints.Backends.
type Spread struct{}

// Name implements PlacementPolicy.
func (Spread) Name() string { return "spread" }

// Place implements PlacementPolicy.
func (Spread) Place(c Constraints, demands []Demand) []int {
	out := make([]int, len(demands))
	for i := range demands {
		out[i] = i % c.Backends
	}
	return out
}

// BestFit packs by residual write-absorption ("credit") budget: each
// demand lands on the backend whose residual write budget after placement
// is smallest but still non-negative (classic best-fit, on the effective
// write load), provided the nominal byte budget also fits. It packs write
// churn tightly — fewer backends carry writes, at the cost of co-locating
// them.
type BestFit struct{}

// Name implements PlacementPolicy.
func (BestFit) Name() string { return "best-fit" }

// Place implements PlacementPolicy.
func (BestFit) Place(c Constraints, demands []Demand) []int {
	usedW := make([]float64, c.Backends)
	usedB := make([]float64, c.Backends)
	out := make([]int, len(demands))
	for i, d := range demands {
		w, bps := c.effWrite(d), d.OfferedBps()
		placed := -1
		for b := 0; b < c.Backends; b++ {
			if usedW[b]+w > c.WriteBps || usedB[b]+bps > c.BackendBps {
				continue
			}
			if placed < 0 || usedW[b] > usedW[placed] {
				placed = b // tightest residual write budget that still fits
			}
		}
		if placed < 0 {
			placed = minLoadIndex(usedW)
		}
		usedW[placed] += w
		usedB[placed] += bps
		out[i] = placed
	}
	return out
}

// heavyWriterPct is the write-ratio threshold above which the
// interference-aware policy treats a tenant as an aggressor whose
// co-location with other aggressors must be avoided.
const heavyWriterPct = 70

// InterferenceAware balances effective write load across backends and
// penalizes co-locating write-heavy tenants (write ratio ≥ 70%) with each
// other: aggressor churn drains the shared cleaner pool, so stacking two
// aggressors advances every co-tenant's throttle onset (the Obs#2
// coupling the noisy-neighbor suite measures). Demands are considered in
// descending effective-write order (greedy multiprocessor scheduling) and
// each lands on the backend minimizing projected write load plus the
// aggressor-affinity penalty, among backends whose nominal byte budget
// still fits. Effective loads come from the volume class's credit
// analytics (Constraints.EffectiveBps), so an aggressor that a burstable
// tier will throttle to its sustained floor anyway does not scare the
// policy into wasting a backend on it.
type InterferenceAware struct{}

// Name implements PlacementPolicy.
func (InterferenceAware) Name() string { return "interference" }

// Place implements PlacementPolicy.
func (InterferenceAware) Place(c Constraints, demands []Demand) []int {
	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return c.effWrite(demands[order[a]]) > c.effWrite(demands[order[b]])
	})
	usedW := make([]float64, c.Backends)
	usedB := make([]float64, c.Backends)
	heavy := make([]int, c.Backends)
	out := make([]int, len(demands))
	for _, i := range order {
		d := demands[i]
		w, bps := c.effWrite(d), d.OfferedBps()
		isHeavy := d.WriteRatioPct >= heavyWriterPct
		best, bestScore := -1, 0.0
		for b := 0; b < c.Backends; b++ {
			score := usedW[b] + w
			if isHeavy {
				score += w * float64(heavy[b])
			}
			fits := usedB[b]+bps <= c.BackendBps
			if best >= 0 {
				bestFits := usedB[best]+bps <= c.BackendBps
				if fits == bestFits && score >= bestScore {
					continue
				}
				if !fits && bestFits {
					continue
				}
			}
			best, bestScore = b, score
		}
		usedW[best] += w
		usedB[best] += bps
		if isHeavy {
			heavy[best]++
		}
		out[i] = best
	}
	return out
}

// minLoadIndex returns the index of the least-loaded backend — the
// best-effort overflow target every budgeted policy falls back to.
func minLoadIndex(used []float64) int {
	min := 0
	for b := 1; b < len(used); b++ {
		if used[b] < used[min] {
			min = b
		}
	}
	return min
}

// horizonOps derives a demand's request count from the spec horizon.
func horizonOps(d Demand, horizon sim.Duration) uint64 {
	if d.Ops > 0 {
		return d.Ops
	}
	n := uint64(d.RatePerSec * horizon.Seconds())
	if n == 0 {
		n = 1
	}
	return n
}
